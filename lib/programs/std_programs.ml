open Weaver_core
module Mgraph = Weaver_graph.Mgraph

let list_concat a b =
  match (a, b) with
  | Progval.List x, Progval.List y -> Progval.List (x @ y)
  | Progval.List x, Progval.Null -> Progval.List x
  | Progval.Null, Progval.List y -> Progval.List y
  | _ -> invalid_arg "merge: expected lists"

let props_pv props = Progval.Assoc (List.map (fun (k, v) -> (k, Progval.Str v)) props)

module Get_node = struct
  let name = "get_node"
  let empty = Progval.List []

  let run ctx ~params:_ ~state:_ =
    let summary =
      Progval.Assoc
        [
          ("vid", Progval.Str ctx.Nodeprog.vid);
          ("degree", Progval.Int (Nodeprog.degree ctx));
          ("props", props_pv (Nodeprog.props ctx));
        ]
    in
    (None, [], Progval.List [ summary ])

  let merge = list_concat
end

module Get_edges = struct
  let name = "get_edges"
  let empty = Progval.List []

  let run ctx ~params:_ ~state:_ =
    let edges =
      List.map
        (fun (e : Mgraph.edge) ->
          Progval.Assoc
            [
              ("eid", Progval.Str e.Mgraph.eid);
              ("src", Progval.Str ctx.Nodeprog.vid);
              ("dst", Progval.Str e.Mgraph.dst);
              ("props", props_pv (Nodeprog.edge_props ctx e));
            ])
        (Nodeprog.out_edges ctx)
    in
    (None, [], Progval.List edges)

  let merge = list_concat
end

module Count_edges = struct
  let name = "count_edges"
  let empty = Progval.Int 0

  let run ctx ~params:_ ~state:_ = (None, [], Progval.Int (Nodeprog.degree ctx))

  let merge a b = Progval.Int (Progval.to_int a + Progval.to_int b)
end

module Reachable = struct
  let name = "reachable"
  let empty = Progval.Bool false

  let run ctx ~params ~state =
    match state with
    | Some _ -> (state, [], Progval.Bool false) (* already visited *)
    | None ->
        let target = Progval.to_str (Progval.assoc "target" params) in
        if String.equal ctx.Nodeprog.vid target then
          (Some (Progval.Bool true), [], Progval.Bool true)
        else begin
          let edge_filter e =
            match Progval.assoc_opt "prop" params with
            | Some (Progval.Str key) -> Nodeprog.edge_has_prop ctx e ~key ()
            | _ -> true
          in
          let hops =
            List.filter_map
              (fun (e : Mgraph.edge) ->
                if edge_filter e then Some (e.Mgraph.dst, params) else None)
              (Nodeprog.out_edges ctx)
          in
          (Some (Progval.Bool true), hops, Progval.Bool false)
        end

  let merge a b = Progval.Bool (Progval.to_bool a || Progval.to_bool b)
end

module Nhop_count = struct
  let name = "nhop_count"
  let empty = Progval.Int 0

  (* state = deepest remaining budget seen; revisit only with more budget *)
  let run ctx ~params ~state =
    let depth = Progval.to_int (Progval.assoc "depth" params) in
    let seen_depth = match state with Some (Progval.Int d) -> Some d | _ -> None in
    let first_visit = seen_depth = None in
    if (match seen_depth with Some d -> depth <= d | None -> false) then
      (state, [], Progval.Int 0)
    else begin
      let hops =
        if depth > 0 then
          List.map
            (fun (e : Mgraph.edge) ->
              (e.Mgraph.dst, Progval.Assoc [ ("depth", Progval.Int (depth - 1)) ]))
            (Nodeprog.out_edges ctx)
        else []
      in
      (Some (Progval.Int depth), hops, Progval.Int (if first_visit then 1 else 0))
    end

  let merge a b = Progval.Int (Progval.to_int a + Progval.to_int b)
end

module Hop_distance = struct
  let name = "hop_distance"
  let empty = Progval.Null

  let run ctx ~params ~state =
    let target = Progval.to_str (Progval.assoc "target" params) in
    let dist =
      match Progval.assoc_opt "dist" params with
      | Some (Progval.Int d) -> d
      | _ -> 0
    in
    let best = match state with Some (Progval.Int d) -> Some d | _ -> None in
    if (match best with Some b -> dist >= b | None -> false) then
      (state, [], Progval.Null)
    else if String.equal ctx.Nodeprog.vid target then
      (Some (Progval.Int dist), [], Progval.Int dist)
    else begin
      let params' =
        Progval.Assoc [ ("target", Progval.Str target); ("dist", Progval.Int (dist + 1)) ]
      in
      let hops =
        List.map (fun (e : Mgraph.edge) -> (e.Mgraph.dst, params')) (Nodeprog.out_edges ctx)
      in
      (Some (Progval.Int dist), hops, Progval.Null)
    end

  let merge a b =
    match (a, b) with
    | Progval.Null, x | x, Progval.Null -> x
    | Progval.Int x, Progval.Int y -> Progval.Int (min x y)
    | _ -> invalid_arg "hop_distance merge"
end

module Clustering = struct
  let name = "clustering"
  let empty = Progval.Assoc [ ("k", Progval.Int 0); ("links", Progval.Int 0) ]

  (* phase 1 at the origin: scatter the neighbour set to every neighbour;
     phase 2 at a neighbour: count own out-edges landing in that set *)
  let run ctx ~params ~state:_ =
    match Progval.assoc_opt "nbrs" params with
    | None ->
        let nbrs =
          List.map (fun (e : Mgraph.edge) -> e.Mgraph.dst) (Nodeprog.out_edges ctx)
        in
        let params' =
          Progval.Assoc [ ("nbrs", Progval.List (List.map (fun d -> Progval.Str d) nbrs)) ]
        in
        let hops = List.map (fun d -> (d, params')) nbrs in
        ( None,
          hops,
          Progval.Assoc [ ("k", Progval.Int (List.length nbrs)); ("links", Progval.Int 0) ] )
    | Some (Progval.List nbrs) ->
        let nbr_set = List.map Progval.to_str nbrs in
        let links =
          List.length
            (List.filter
               (fun (e : Mgraph.edge) -> List.mem e.Mgraph.dst nbr_set)
               (Nodeprog.out_edges ctx))
        in
        ( None,
          [],
          Progval.Assoc [ ("k", Progval.Int 0); ("links", Progval.Int links) ] )
    | Some _ -> (None, [], empty)

  let merge a b =
    Progval.Assoc
      [
        ("k", Progval.Int (Progval.to_int (Progval.assoc "k" a) + Progval.to_int (Progval.assoc "k" b)));
        ( "links",
          Progval.Int
            (Progval.to_int (Progval.assoc "links" a)
            + Progval.to_int (Progval.assoc "links" b)) );
      ]
end

module Block_render = struct
  let name = "block_render"
  let empty = Progval.List []

  (* the block vertex links to its Bitcoin transactions with "tx" edges;
     each transaction vertex reports its attributes and output count *)
  let run ctx ~params ~state:_ =
    match Progval.assoc_opt "phase" params with
    | None ->
        let tx_edges =
          List.filter
            (fun e -> Nodeprog.edge_has_prop ctx e ~key:"type" ~value:"tx" ())
            (Nodeprog.out_edges ctx)
        in
        let hops =
          List.map
            (fun (e : Mgraph.edge) ->
              (e.Mgraph.dst, Progval.Assoc [ ("phase", Progval.Str "tx") ]))
            tx_edges
        in
        let block_summary =
          Progval.Assoc
            [
              ("block", Progval.Str ctx.Nodeprog.vid);
              ("n_tx", Progval.Int (List.length tx_edges));
              ("props", props_pv (Nodeprog.props ctx));
            ]
        in
        (None, hops, Progval.List [ block_summary ])
    | Some _ ->
        let summary =
          Progval.Assoc
            [
              ("tx", Progval.Str ctx.Nodeprog.vid);
              ("outputs", Progval.Int (Nodeprog.degree ctx));
              ("props", props_pv (Nodeprog.props ctx));
            ]
        in
        (None, [], Progval.List [ summary ])

  let merge = list_concat
end

module Taint = struct
  let name = "taint"
  let empty = Progval.List []

  let run ctx ~params ~state =
    match state with
    | Some _ -> (state, [], Progval.List [])
    | None ->
        let depth = Progval.to_int (Progval.assoc "depth" params) in
        let hops =
          if depth > 0 then
            List.map
              (fun (e : Mgraph.edge) ->
                (e.Mgraph.dst, Progval.Assoc [ ("depth", Progval.Int (depth - 1)) ]))
              (Nodeprog.out_edges ctx)
          else []
        in
        (Some (Progval.Bool true), hops, Progval.List [ Progval.Str ctx.Nodeprog.vid ])

  let merge = list_concat
end

module Star_match = struct
  let name = "star_match"
  let empty = Progval.List []

  let run ctx ~params ~state:_ =
    match Progval.assoc_opt "origin" params with
    | None ->
        let ckey = Progval.to_str (Progval.assoc "ckey" params) in
        let cval = Progval.to_str (Progval.assoc "cval" params) in
        if Nodeprog.prop ctx ckey = Some cval then begin
          let params' =
            Progval.Assoc
              (("origin", Progval.Str ctx.Nodeprog.vid)
              :: (match params with Progval.Assoc l -> l | _ -> []))
          in
          let hops =
            List.map
              (fun (e : Mgraph.edge) -> (e.Mgraph.dst, params'))
              (Nodeprog.out_edges ctx)
          in
          (None, hops, Progval.List [])
        end
        else (None, [], Progval.List [])
    | Some origin ->
        let nkey = Progval.to_str (Progval.assoc "nkey" params) in
        let nval = Progval.to_str (Progval.assoc "nval" params) in
        if Nodeprog.prop ctx nkey = Some nval then
          ( None,
            [],
            Progval.List
              [
                Progval.Assoc
                  [ ("center", origin); ("nbr", Progval.Str ctx.Nodeprog.vid) ];
              ] )
        else (None, [], Progval.List [])

  let merge = list_concat
end

module Triangle_count = struct
  let name = "triangle_count"
  let empty = Progval.Int 0

  (* directed triangles through the start vertex v: for each neighbour n of
     v, count n's out-edges that land back in v's neighbourhood (phase 2),
     like Clustering but counting closed wedges v -> n -> m with m in N(v) *)
  let run ctx ~params ~state:_ =
    match Progval.assoc_opt "nbrs" params with
    | None ->
        let nbrs =
          List.map (fun (e : Mgraph.edge) -> e.Mgraph.dst) (Nodeprog.out_edges ctx)
        in
        let params' =
          Progval.Assoc [ ("nbrs", Progval.List (List.map (fun d -> Progval.Str d) nbrs)) ]
        in
        (None, List.map (fun d -> (d, params')) nbrs, Progval.Int 0)
    | Some (Progval.List nbrs) ->
        let nbr_set = List.map Progval.to_str nbrs in
        let closed =
          List.length
            (List.filter
               (fun (e : Mgraph.edge) -> List.mem e.Mgraph.dst nbr_set)
               (Nodeprog.out_edges ctx))
        in
        (None, [], Progval.Int closed)
    | Some _ -> (None, [], empty)

  let merge a b = Progval.Int (Progval.to_int a + Progval.to_int b)
end

module Khop_collect = struct
  let name = "khop_collect"
  let empty = Progval.List []

  (* collect the ids of every vertex within [depth] hops (the
     n-hop-neighbourhood query RoboBrain-style apps use) *)
  let run ctx ~params ~state =
    let depth = Progval.to_int (Progval.assoc "depth" params) in
    let seen = match state with Some (Progval.Int d) -> Some d | _ -> None in
    let first = seen = None in
    if (match seen with Some d -> depth <= d | None -> false) then
      (state, [], Progval.List [])
    else begin
      let hops =
        if depth > 0 then
          List.map
            (fun (e : Mgraph.edge) ->
              (e.Mgraph.dst, Progval.Assoc [ ("depth", Progval.Int (depth - 1)) ]))
            (Nodeprog.out_edges ctx)
        else []
      in
      ( Some (Progval.Int depth),
        hops,
        if first then Progval.List [ Progval.Str ctx.Nodeprog.vid ] else Progval.List [] )
    end

  let merge = list_concat
end

module Degree_dist = struct
  let name = "degree_dist"
  let empty = Progval.Assoc []

  (* histogram of out-degrees over the start vertices: Assoc degree->count *)
  let run ctx ~params:_ ~state:_ =
    let d = string_of_int (Nodeprog.degree ctx) in
    (None, [], Progval.Assoc [ (d, Progval.Int 1) ])

  let merge a b =
    let al = match a with Progval.Assoc l -> l | _ -> [] in
    let bl = match b with Progval.Assoc l -> l | _ -> [] in
    let keys = List.sort_uniq compare (List.map fst al @ List.map fst bl) in
    Progval.Assoc
      (List.map
         (fun k ->
           let get l = match List.assoc_opt k l with Some v -> Progval.to_int v | None -> 0 in
           (k, Progval.Int (get al + get bl)))
         keys)
end

module History = struct
  let name = "history"
  let empty = Progval.List []

  (* version archaeology on the multi-version record (§4.5's "keep
     everything" GC policy makes this a full audit trail): for each start
     vertex report how many property/edge versions exist, how many are
     dead, and the creation stamp *)
  let run ctx ~params:_ ~state:_ =
    let v = ctx.Nodeprog.vertex in
    let count pred a = Array.fold_left (fun n x -> if pred x then n + 1 else n) 0 a in
    let dead_props =
      count (fun (p : Mgraph.prop) -> p.Mgraph.p_life.Mgraph.deleted <> None) v.Mgraph.v_props
    in
    let dead_edges =
      count (fun (e : Mgraph.edge) -> e.Mgraph.e_life.Mgraph.deleted <> None) v.Mgraph.out
    in
    let summary =
      Progval.Assoc
        [
          ("vid", Progval.Str v.Mgraph.vid);
          ("created", Progval.Str (Weaver_vclock.Vclock.to_string v.Mgraph.v_life.Mgraph.created));
          ("alive", Progval.Bool (v.Mgraph.v_life.Mgraph.deleted = None));
          ("prop_versions", Progval.Int (Array.length v.Mgraph.v_props));
          ("dead_prop_versions", Progval.Int dead_props);
          ("edge_versions", Progval.Int (Array.length v.Mgraph.out));
          ("dead_edge_versions", Progval.Int dead_edges);
        ]
    in
    (None, [], Progval.List [ summary ])

  let merge = list_concat
end

module Match_prop = struct
  let name = "match_prop"
  let empty = Progval.List []

  (* vertex-property selection: return the ids of start vertices carrying
     key=value at the snapshot; with Analytics.run_all this is a full
     property scan (graph databases' "find all users named X") *)
  let run ctx ~params ~state:_ =
    let key = Progval.to_str (Progval.assoc "key" params) in
    let value = Progval.to_str (Progval.assoc "value" params) in
    if Nodeprog.prop ctx key = Some value then
      (None, [], Progval.List [ Progval.Str ctx.Nodeprog.vid ])
    else (None, [], Progval.List [])

  let merge = list_concat
end

module Std = struct
  let all : (module Nodeprog.PROGRAM) list =
    [
      (module Get_node);
      (module Get_edges);
      (module Count_edges);
      (module Reachable);
      (module Nhop_count);
      (module Hop_distance);
      (module Clustering);
      (module Block_render);
      (module Taint);
      (module Star_match);
      (module Triangle_count);
      (module Khop_collect);
      (module Degree_dist);
      (module History);
      (module Match_prop);
    ]

  let register_all registry = List.iter (Nodeprog.register registry) all
end
