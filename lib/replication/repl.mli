(** Timestamp-consistent partial replication of hot vertex ranges
    (ROADMAP item 3; Sutra & Shapiro's fault-tolerant partial replication
    adapted to refinable timestamps).

    The paper's own replicas (§6.4, [Replica]) copy a whole shard and serve
    weak reads with no freshness bound. This module supplies the pure logic
    for the stronger scheme built on top of the watermark machinery: owners
    of {e hot ranges} (as identified by [Obs.Heat]) stream applied updates
    to follower shards together with their gossiped GC watermarks, and a
    follower may serve any read at stamp [t] that its replication watermark
    {e covers} — the result is then bit-identical to the owner's answer at
    the same cut, because both resolve the same multi-version records at
    the same timestamp.

    Everything here is deterministic bookkeeping over vector clocks: no
    randomness, no events, no I/O. The actor-facing controller lives in
    [Weaver_core.Replicator]; shards and gatekeepers keep a {!Table} each
    and drive it from [Repl_install] / [Repl_cover] messages. *)

module Vclock = Weaver_vclock.Vclock

val covers : wm:Vclock.t -> Vclock.t -> bool
(** [covers ~wm at]: is a copy whose replication watermark is [wm] safe to
    read at stamp [at]? True iff the epochs match, the dimensions match,
    and [at] is componentwise [<=] [wm] — i.e. every transaction that could
    be visible at [at] has a stamp at or below the watermark, hence has
    been applied to the copy. Componentwise [<=] (not strict
    happens-before): a read re-stamped exactly at the watermark is safe. *)

(** Range → owner/followers routing table, with per-follower monotone
    replication watermarks. Gatekeepers use it to pick read destinations;
    the controller uses it to remember what is already replicated. *)
module Table : sig
  type t

  val create : unit -> t

  val install : t -> range:int -> owner:int -> followers:int list -> unit
  (** Register (or overwrite) the replication plan for a range. Follower
      watermarks start unset — a follower advertises coverage only after
      its first seed. *)

  val drop : t -> range:int -> unit
  val is_replicated : t -> range:int -> bool

  val owner : t -> range:int -> int option
  (** Owning shard of a replicated range, [None] if not replicated. *)

  val followers : t -> range:int -> (int * Vclock.t option) list
  (** Followers of a range with their last advertised watermarks, in
      install order. Empty if the range is not replicated. *)

  val set_wm : t -> range:int -> follower:int -> Vclock.t -> unit
  (** Advance a follower's advertised watermark. Watermarks travel over one
      FIFO channel per (follower, gatekeeper) pair, so plain replacement is
      monotone within an epoch; an epoch change resets them via
      {!clear_wms}. Unknown ranges/followers are ignored. *)

  val clear_wms : t -> unit
  (** Forget every advertised watermark (epoch barrier: old-epoch stamps
      can never cover new-epoch reads, and followers re-advertise after
      their post-barrier reseed). *)

  val covering : t -> range:int -> at:Vclock.t -> int list
  (** Followers whose advertised watermark {!covers} [at], in install
      order. Liveness filtering is the caller's business. *)

  val ranges : t -> int list
  (** Replicated ranges, sorted ascending (deterministic iteration). *)

  val size : t -> int
end
