module Vclock = Weaver_vclock.Vclock

let covers ~(wm : Vclock.t) (at : Vclock.t) =
  wm.Vclock.epoch = at.Vclock.epoch
  && Array.length wm.Vclock.clocks = Array.length at.Vclock.clocks
  &&
  let ok = ref true in
  Array.iteri
    (fun i w -> if at.Vclock.clocks.(i) > w then ok := false)
    wm.Vclock.clocks;
  !ok

module Table = struct
  type entry = {
    e_owner : int;
    mutable e_followers : (int * Vclock.t option) list;  (* install order *)
  }

  type t = { entries : (int, entry) Hashtbl.t }

  let create () = { entries = Hashtbl.create 16 }

  let install t ~range ~owner ~followers =
    Hashtbl.replace t.entries range
      { e_owner = owner; e_followers = List.map (fun f -> (f, None)) followers }

  let drop t ~range = Hashtbl.remove t.entries range
  let is_replicated t ~range = Hashtbl.mem t.entries range

  let owner t ~range =
    match Hashtbl.find_opt t.entries range with
    | Some e -> Some e.e_owner
    | None -> None

  let followers t ~range =
    match Hashtbl.find_opt t.entries range with
    | Some e -> e.e_followers
    | None -> []

  let set_wm t ~range ~follower wm =
    match Hashtbl.find_opt t.entries range with
    | None -> ()
    | Some e ->
        e.e_followers <-
          List.map
            (fun (f, old) -> if f = follower then (f, Some wm) else (f, old))
            e.e_followers

  let clear_wms t =
    Hashtbl.iter
      (fun _ e -> e.e_followers <- List.map (fun (f, _) -> (f, None)) e.e_followers)
      t.entries

  let covering t ~range ~at =
    match Hashtbl.find_opt t.entries range with
    | None -> []
    | Some e ->
        List.filter_map
          (fun (f, wm) ->
            match wm with
            | Some wm when covers ~wm at -> Some f
            | _ -> None)
          e.e_followers

  let ranges t =
    List.sort compare (Hashtbl.fold (fun r _ acc -> r :: acc) t.entries [])

  let size t = Hashtbl.length t.entries
end
