(** Minimal JSON parser and document accessors.

    The repository emits all of its JSON (metrics registries, Chrome trace
    events, timeline exports) with hand-rolled [Printf]; this is the
    matching reader, used by tests to validate those documents round-trip
    and by tools that consume them. It is deliberately small: UTF-8 pass
    through, BMP [\u] escapes, no streaming. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members in document order *)

exception Parse_error of string

val parse : string -> (t, string) result
(** Parse one complete JSON document; [Error] carries a message with the
    byte offset of the failure. *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

(** {1 Accessors} — total, option-returning lookups for tests. *)

val member : string -> t -> t option
(** Object member by key; [None] on non-objects and missing keys. *)

val to_list : t -> t list option
val to_string : t -> string option
val to_number : t -> float option

val string_member : string -> t -> string option
val number_member : string -> t -> float option
