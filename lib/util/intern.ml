type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n : int;
}

let create ?(capacity = 1024) () =
  { ids = Hashtbl.create capacity; names = [||]; n = 0 }

let count t = t.n

let id t name =
  match Hashtbl.find_opt t.ids name with
  | Some h -> h
  | None ->
      let h = t.n in
      let cap = Array.length t.names in
      if h = cap then begin
        let ncap = if cap = 0 then 64 else cap * 2 in
        let nn = Array.make ncap "" in
        Array.blit t.names 0 nn 0 h;
        t.names <- nn
      end;
      t.names.(h) <- name;
      t.n <- h + 1;
      Hashtbl.replace t.ids name h;
      h

let find t name = Hashtbl.find_opt t.ids name

let name t h =
  if h < 0 || h >= t.n then invalid_arg "Intern.name: unknown handle";
  t.names.(h)
