type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { data = [||]; size = 0; sorted = false }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nd = Array.make ncap 0.0 in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size
let is_empty t = t.size = 0

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let total t = fold ( +. ) 0.0 t
let mean t = if t.size = 0 then 0.0 else total t /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let m = mean t in
    let ss = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t in
    sqrt (ss /. float_of_int (t.size - 1))
  end

let min_val t = if t.size = 0 then 0.0 else fold Float.min t.data.(0) t
let max_val t = if t.size = 0 then 0.0 else fold Float.max t.data.(0) t

let ensure_sorted t =
  if not t.sorted then begin
    let trimmed = Array.sub t.data 0 t.size in
    Array.sort Float.compare trimmed;
    Array.blit trimmed 0 t.data 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then 0.0
  else begin
    ensure_sorted t;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.size)) in
    let idx = if rank <= 0 then 0 else rank - 1 in
    let idx = if idx >= t.size then t.size - 1 else idx in
    t.data.(idx)
  end

let cdf t ~points =
  if t.size = 0 || points <= 0 then []
  else begin
    ensure_sorted t;
    let out = ref [] in
    for i = points downto 1 do
      let frac = float_of_int i /. float_of_int points in
      let idx = int_of_float (frac *. float_of_int t.size) - 1 in
      let idx = if idx < 0 then 0 else if idx >= t.size then t.size - 1 else idx in
      out := (t.data.(idx), frac) :: !out
    done;
    !out
  end

let summary t =
  Printf.sprintf "n=%d mean=%.4f p50=%.4f p99=%.4f max=%.4f" t.size (mean t)
    (percentile t 50.0) (percentile t 99.0) (max_val t)

module Histogram = struct
  type h = { lo : float; hi : float; counts : int array }

  let create ~lo ~hi ~buckets =
    assert (buckets > 0 && hi > lo);
    { lo; hi; counts = Array.make buckets 0 }

  let bucket_of h x =
    let n = Array.length h.counts in
    if x <= h.lo then 0
    else if x >= h.hi then n - 1
    else
      (* the ratio can round up to exactly 1.0 for x just below hi (e.g.
         after catastrophic cancellation in x -. lo), yielding index n *)
      min (n - 1) (int_of_float ((x -. h.lo) /. (h.hi -. h.lo) *. float_of_int n))

  let add h x =
    let b = bucket_of h x in
    h.counts.(b) <- h.counts.(b) + 1

  let counts h = Array.copy h.counts
  let total h = Array.fold_left ( + ) 0 h.counts
end
