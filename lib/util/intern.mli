(** Hash-consed string handles.

    Interns strings into dense integer handles: equal strings always map
    to the same handle, so hot-path comparisons and hash-table lookups
    become integer operations instead of byte-wise string work. Handles
    are allocated densely from 0 in first-intern order, which makes them
    directly usable as array indices. Interning is append-only: a handle
    stays valid (and keeps its name) for the lifetime of the table. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty table. [capacity] is a sizing hint (default 1024). *)

val id : t -> string -> int
(** The handle for this string, interning it on first sight. O(1)
    amortized; the handle of an already-interned string involves no
    allocation beyond the hash lookup. *)

val find : t -> string -> int option
(** The handle if the string was interned before, without interning. *)

val name : t -> int -> string
(** Reverse lookup (array index).
    @raise Invalid_argument on a handle this table never issued. *)

val count : t -> int
(** Number of distinct strings interned; handles are [0 .. count - 1]. *)
