(* Minimal JSON: just enough to parse back the documents this repository
   emits (metrics registries, Chrome trace events, timeline exports). The
   toolchain ships no JSON library, and the emitters are hand-rolled
   Printf — this parser is the matching validator, used by tests and
   tools, not by the simulation itself. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let continue = ref true in
  while !continue do
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> advance cur
    | _ -> continue := false
  done

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | _ -> error cur (Printf.sprintf "expected '%c'" c)

let parse_literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur ("expected " ^ word)

let parse_string cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some 'n' -> advance cur; Buffer.add_char b '\n'; go ()
        | Some 't' -> advance cur; Buffer.add_char b '\t'; go ()
        | Some 'r' -> advance cur; Buffer.add_char b '\r'; go ()
        | Some 'b' -> advance cur; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance cur; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.src then error cur "bad \\u escape";
            let hex = String.sub cur.src cur.pos 4 in
            cur.pos <- cur.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> error cur "bad \\u escape"
            in
            (* BMP-only, encoded as UTF-8; surrogate pairs are not emitted
               by any serializer in this repository *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | Some c -> advance cur; Buffer.add_char b c; go ()
        | None -> error cur "unterminated escape")
    | Some c ->
        advance cur;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number cur =
  let start = cur.pos in
  let continue = ref true in
  while !continue do
    match peek cur with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance cur
    | _ -> continue := false
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error cur ("bad number " ^ s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin advance cur; Obj [] end
      else begin
        let fields = ref [] in
        let rec member () =
          skip_ws cur;
          let key = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          fields := (key, v) :: !fields;
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; member ()
          | Some '}' -> advance cur
          | _ -> error cur "expected ',' or '}'"
        in
        member ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin advance cur; List [] end
      else begin
        let items = ref [] in
        let rec element () =
          let v = parse_value cur in
          items := v :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; element ()
          | Some ']' -> advance cur
          | _ -> error cur "expected ',' or ']'"
        in
        element ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some 'n' -> parse_literal cur "null" Null
  | Some _ -> Num (parse_number cur)

let parse s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos <> String.length s then Error "trailing garbage" else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> raise (Parse_error msg)

(* accessors: total functions returning options, so tests read naturally *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_number = function Num f -> Some f | _ -> None

let string_member key v = Option.bind (member key v) to_string
let number_member key v = Option.bind (member key v) to_number
