(* Reproduction of every table and figure in the paper's evaluation (§6),
   plus the ablations DESIGN.md calls out. Each experiment prints the same
   rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured.

   All "time" below is virtual simulation time; see DESIGN.md for why the
   shapes (not the absolute numbers) are the reproduction target. *)

open Weaver_core
open Weaver_workloads
open Weaver_baselines
module Xrand = Weaver_util.Xrand
module Stats = Weaver_util.Stats
module Partition = Weaver_partition.Partition
module Programs = Weaver_programs.Std_programs

let line fmt = Printf.printf (fmt ^^ "\n%!")
let header title = line "\n==== %s ====" title

let mk_cluster cfg =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok_exn what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ e)

(* run one node program and return its latency measured at the callback
   (not quantized by the sync driver's polling window) *)
let timed_program cluster client ~prog ~params ~starts =
  let t0 = Cluster.now cluster in
  let result = ref None in
  Client.run_program_async client ~prog ~params ~starts
    ~on_result:(fun r -> result := Some (Cluster.now cluster -. t0, r))
    ();
  let budget = ref 200_000 in
  while Option.is_none !result && !budget > 0 do
    decr budget;
    Cluster.run_for cluster 1_000.0
  done;
  match !result with
  | Some (lat, Ok v) -> (lat, v)
  | Some (_, Error e) -> failwith ("timed_program: " ^ e)
  | None -> failwith "timed_program: stalled" 

(* ------------------------------------------------------------------ *)
(* Table 1: the TAO operation mix our generator produces vs the paper.  *)

let table1 () =
  header "Table 1: TAO workload mix (generated vs paper)";
  let rng = Xrand.create ~seed:1 () in
  let vertices = Array.init 1000 (fun i -> "v" ^ string_of_int i) in
  let n = 500_000 in
  let ops = List.init n (fun _ -> Tao.gen_op ~rng ~vertices ()) in
  let counts = Tao.mix_counts ops in
  let paper =
    [
      ("get_edges", 59.4 *. 0.998);
      ("count_edges", 11.7 *. 0.998);
      ("get_node", 28.9 *. 0.998);
      ("create_edge", 80.0 *. 0.2 /. 100.0);
      ("delete_edge", 20.0 *. 0.2 /. 100.0);
    ]
  in
  line "%-14s %10s %10s" "operation" "generated%" "paper%";
  List.iter
    (fun (name, paper_pct) ->
      let got =
        100.0
        *. float_of_int (Option.value ~default:0 (List.assoc_opt name counts))
        /. float_of_int n
      in
      line "%-14s %10.3f %10.3f" name got paper_pct)
    paper

(* ------------------------------------------------------------------ *)
(* Fig. 7: Bitcoin block query latency vs block height,
   CoinGraph vs the Blockchain.info cost model.                        *)

let fig7_heights = [ 1_000; 50_000; 100_000; 150_000; 200_000; 250_000; 300_000; 350_000 ]

(* CoinGraph's deployment reads transactions through demand paging from the
   disk-backed store (par. 6.1), measured by the paper at 0.6-0.8 ms per
   Bitcoin transaction; we calibrate the per-vertex read cost to that. *)
let coingraph_vertex_cost = 2_600.0

let fig7 () =
  header "Fig 7: Bitcoin block query latency (s)";
  let cfg =
    {
      Config.default with
      Config.n_shards = 8;
      Config.seed = 7;
      Config.vertex_read_cost = coingraph_vertex_cost;
    }
  in
  let c = mk_cluster cfg in
  let app = Weaver_apps.Coingraph.create c in
  List.iter (fun h -> ignore (Weaver_apps.Coingraph.preload_block app ~height:h)) fig7_heights;
  Cluster.run_for c 10_000.0;
  let rng = Xrand.create ~seed:77 () in
  line "%-10s %8s %14s %14s %16s" "block" "n_tx" "coingraph(s)" "bc.info(s)" "coingraph ms/tx";
  List.iter
    (fun h ->
      let n_tx = Blockchain.txs_in_block h in
      let lat = Stats.create () in
      for _ = 1 to 20 do
        let t0 = Cluster.now c in
        ignore (ok_exn "block_query" (Weaver_apps.Coingraph.block_query app ~height:h));
        Stats.add lat (Cluster.now c -. t0)
      done;
      let cg = Stats.mean lat /. 1e6 in
      let bc = Blockchain_info.block_query_latency ~rng ~n_tx () /. 1e6 in
      line "%-10d %8d %14.4f %14.4f %16.4f" h n_tx cg bc (Stats.mean lat /. float_of_int n_tx /. 1000.0))
    fig7_heights

(* ------------------------------------------------------------------ *)
(* Fig. 8: throughput of block render queries and vertex read rate.    *)

let fig8 () =
  header "Fig 8: CoinGraph block render throughput";
  line "%-10s %8s %12s %14s" "block" "n_tx" "queries/s" "vertices/s";
  List.iter
    (fun h ->
      let cfg =
        {
          Config.default with
          Config.n_shards = 16;
          Config.seed = 8;
          Config.vertex_read_cost = coingraph_vertex_cost;
        }
      in
      let c = mk_cluster cfg in
      let app = Weaver_apps.Coingraph.create c in
      ignore (Weaver_apps.Coingraph.preload_block app ~height:h);
      Cluster.run_for c 10_000.0;
      let completed = ref 0 in
      let clients = 16 in
      for _ = 1 to clients do
        let client = Cluster.client c in
        let rec loop () =
          Client.run_program_async client ~prog:"block_render" ~params:Progval.Null
            ~starts:[ Blockchain.block_vid h ]
            ~on_result:(fun _ ->
              incr completed;
              loop ())
            ()
        in
        loop ()
      done;
      let v0 = (Cluster.counters c).Runtime.vertices_read in
      let duration = 1_000_000.0 in
      Cluster.run_for c duration;
      let dv = (Cluster.counters c).Runtime.vertices_read - v0 in
      let secs = duration /. 1e6 in
      line "%-10d %8d %12.1f %14.0f" h (Blockchain.txs_in_block h)
        (float_of_int !completed /. secs)
        (float_of_int dv /. secs))
    [ 1_000; 100_000; 200_000; 300_000; 350_000 ]

(* ------------------------------------------------------------------ *)
(* Fig. 9 / Fig. 10: social-network throughput and latency CDFs,
   Weaver vs the Titan-like 2PL+2PC baseline.                          *)

let social_graph seed =
  let rng = Xrand.create ~seed () in
  Graphgen.preferential ~rng ~prefix:"u" ~vertices:8_000 ~out_degree:7 ()

(* Warp commits on the paper's spinning-disk testbed dominate write
   latency (Fig. 10 shows writes an order of magnitude slower than reads);
   calibrate the per-key store cost so one small write transaction costs
   a paper-like ~15 ms. *)
let social_store_op_cost = 5_000.0

let run_weaver_social ~read_fraction ~clients ~seed =
  let cfg =
    {
      Config.default with
      Config.n_shards = 8;
      Config.seed;
      Config.store_op_cost = social_store_op_cost;
    }
  in
  let c = mk_cluster cfg in
  let g = social_graph seed in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  ( Tao.Driver.run c ~vertices ~clients ~duration:400_000.0 ~read_fraction
      ~warmup:50_000.0 (),
    c )

let titan_social ~read_fraction ~clients ~seed =
  let engine = Weaver_sim.Engine.create ~seed () in
  let t =
    Titan_like.create engine ~rtt:(2.0 *. Config.default.Config.net_base_latency)
  in
  let g = social_graph seed in
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  Titan_like.Driver.run t ~vertices ~clients ~duration:400_000.0 ~read_fraction ()

let fig9 () =
  header "Fig 9a: throughput, TAO mix (99.8% reads)";
  let weaver, _ = run_weaver_social ~read_fraction:0.998 ~clients:60 ~seed:9 in
  let titan = titan_social ~read_fraction:0.998 ~clients:60 ~seed:9 in
  line "%-8s %12s" "system" "tx/s";
  line "%-8s %12.0f" "weaver" weaver.Tao.Driver.throughput;
  line "%-8s %12.0f" "titan" titan.Titan_like.Driver.throughput;
  line "speedup: %.1fx (paper: 10.9x)"
    (weaver.Tao.Driver.throughput /. titan.Titan_like.Driver.throughput);
  header "Fig 9b: throughput, 75% read workload";
  let weaver75, _ = run_weaver_social ~read_fraction:0.75 ~clients:50 ~seed:19 in
  let titan75 = titan_social ~read_fraction:0.75 ~clients:45 ~seed:19 in
  line "%-8s %12s" "system" "tx/s";
  line "%-8s %12.0f" "weaver" weaver75.Tao.Driver.throughput;
  line "%-8s %12.0f" "titan" titan75.Titan_like.Driver.throughput;
  line "speedup: %.1fx (paper: 1.5x)"
    (weaver75.Tao.Driver.throughput /. titan75.Titan_like.Driver.throughput)

let print_cdf name stats =
  let cdf = Stats.cdf stats ~points:10 in
  line "%s (n=%d):" name (Stats.count stats);
  List.iter (fun (v, f) -> line "  p%-3.0f %10.3f ms" (f *. 100.0) (v /. 1000.0)) cdf

let fig10 () =
  header "Fig 10: transaction latency CDFs, social network workload";
  let weaver_hi, _ = run_weaver_social ~read_fraction:0.998 ~clients:60 ~seed:10 in
  let weaver_lo, _ = run_weaver_social ~read_fraction:0.75 ~clients:50 ~seed:10 in
  let titan_hi = titan_social ~read_fraction:0.998 ~clients:60 ~seed:10 in
  let titan_lo = titan_social ~read_fraction:0.75 ~clients:45 ~seed:10 in
  print_cdf "weaver 99.8% reads (reads)" weaver_hi.Tao.Driver.read_latencies;
  print_cdf "weaver 75% reads (reads)" weaver_lo.Tao.Driver.read_latencies;
  print_cdf "weaver 75% reads (writes)" weaver_lo.Tao.Driver.write_latencies;
  print_cdf "titan 99.8% reads (reads)" titan_hi.Titan_like.Driver.read_latencies;
  print_cdf "titan 75% reads (reads)" titan_lo.Titan_like.Driver.read_latencies

(* ------------------------------------------------------------------ *)
(* Fig. 11: traversal latency CDF vs GraphLab-like engines.            *)

let fig11 () =
  header "Fig 11: reachability latency CDF, small Twitter-like graph";
  let rng = Xrand.create ~seed:11 () in
  (* heavy-tailed like the paper's ego-Twitter crawl, so the work per query
     varies greatly across requests (the spread in Fig. 11) *)
  let g = Graphgen.rmat ~rng ~prefix:"t" ~vertices:4_096 ~edges:84_000 () in
  let cfg = { Config.default with Config.n_shards = 8; Config.seed = 11 } in
  let c = mk_cluster cfg in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let client = Cluster.client c in
  let gl = Graphlab_like.load g in
  let costs = Graphlab_like.default_costs in
  let weaver = Stats.create ()
  and gl_sync = Stats.create ()
  and gl_async = Stats.create () in
  let pair_rng = Xrand.create ~seed:111 () in
  for _ = 1 to 40 do
    let src = Graphgen.vid g (Xrand.int pair_rng g.Graphgen.n_vertices) in
    let dst = Graphgen.vid g (Xrand.int pair_rng g.Graphgen.n_vertices) in
    (* Weaver: sequential single client, as in the paper (§6.3) *)
    let lat, _ =
      timed_program c client ~prog:"reachable"
        ~params:(Progval.Assoc [ ("target", Progval.Str dst) ])
        ~starts:[ src ]
    in
    Stats.add weaver lat;
    Stats.add gl_sync
      (Graphlab_like.reachability_latency gl ~mode:Graphlab_like.Sync ~costs ~src ~dst);
    Stats.add gl_async
      (Graphlab_like.reachability_latency gl ~mode:Graphlab_like.Async ~costs ~src ~dst)
  done;
  print_cdf "weaver" weaver;
  print_cdf "graphlab async" gl_async;
  print_cdf "graphlab sync" gl_sync;
  line "mean latency: weaver %.1f ms | async %.1f ms (%.1fx) | sync %.1f ms (%.1fx)"
    (Stats.mean weaver /. 1e3)
    (Stats.mean gl_async /. 1e3)
    (Stats.mean gl_async /. Stats.mean weaver)
    (Stats.mean gl_sync /. 1e3)
    (Stats.mean gl_sync /. Stats.mean weaver);
  line "(paper: async 4.3x, sync 9.4x slower than Weaver)"

(* ------------------------------------------------------------------ *)
(* Fig. 12: get_node throughput scaling with gatekeepers.              *)

let fig12 () =
  header "Fig 12: get_node throughput vs gatekeepers";
  line "%-14s %12s" "gatekeepers" "tx/s";
  List.iter
    (fun n_gk ->
      let cfg =
        { Config.default with Config.n_gatekeepers = n_gk; Config.n_shards = 4; Config.seed = 12 }
      in
      let c = mk_cluster cfg in
      let rng = Xrand.create ~seed:12 () in
      let g = Graphgen.rmat ~rng ~prefix:"w" ~vertices:4_000 ~edges:40_000 () in
      Loader.fast_install c g;
      Cluster.run_for c 5_000.0;
      let vertices = Array.of_list (Graphgen.vertex_ids g) in
      let completed = ref 0 in
      let clients = 60 * n_gk in
      for _ = 1 to clients do
        let client = Cluster.client c in
        let vrng = Xrand.split (Weaver_sim.Engine.rng (Cluster.runtime c).Runtime.engine) in
        let rec loop () =
          let v = vertices.(Xrand.int vrng (Array.length vertices)) in
          Client.run_program_async client ~prog:"get_node" ~params:Progval.Null
            ~starts:[ v ]
            ~on_result:(fun _ ->
              incr completed;
              loop ())
            ()
        in
        loop ()
      done;
      let duration = 200_000.0 in
      Cluster.run_for c duration;
      line "%-14d %12.0f" n_gk (float_of_int !completed /. (duration /. 1e6)))
    [ 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Fig. 13: clustering-coefficient throughput scaling with shards.     *)

let fig13 () =
  header "Fig 13: local clustering coefficient throughput vs shards";
  line "%-10s %12s" "shards" "tx/s";
  List.iter
    (fun n_shards ->
      (* heavier per-vertex work makes the shards the bottleneck (the
         paper's clustering query does real work per neighbour) *)
      let cfg =
        {
          Config.default with
          Config.n_gatekeepers = 2;
          Config.n_shards = n_shards;
          Config.seed = 13;
          Config.vertex_read_cost = 50.0;
        }
      in
      let c = mk_cluster cfg in
      let rng = Xrand.create ~seed:13 () in
      let g = Graphgen.uniform ~rng ~prefix:"t" ~vertices:2_000 ~edges:42_000 () in
      Loader.fast_install c g;
      Cluster.run_for c 5_000.0;
      let vertices = Array.of_list (Graphgen.vertex_ids g) in
      let completed = ref 0 in
      for _ = 1 to 100 do
        let client = Cluster.client c in
        let vrng = Xrand.split (Weaver_sim.Engine.rng (Cluster.runtime c).Runtime.engine) in
        let rec loop () =
          let v = vertices.(Xrand.int vrng (Array.length vertices)) in
          Client.run_program_async client ~prog:"clustering" ~params:Progval.Null
            ~starts:[ v ]
            ~on_result:(fun _ ->
              incr completed;
              loop ())
            ()
        in
        loop ()
      done;
      let duration = 200_000.0 in
      Cluster.run_for c duration;
      line "%-10d %12.0f" n_shards (float_of_int !completed /. (duration /. 1e6)))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

(* ------------------------------------------------------------------ *)
(* Fig. 14: proactive vs reactive coordination cost as τ varies.       *)

let fig14 () =
  header "Fig 14: coordination overhead vs timestamp announce period";
  line "%-12s %20s %22s" "tau (us)" "announces/query" "oracle msgs/query";
  List.iter
    (fun tau ->
      let cfg =
        { Config.default with Config.tau; Config.n_shards = 4; Config.seed = 14 }
      in
      let c = mk_cluster cfg in
      let rng = Xrand.create ~seed:14 () in
      let g = Graphgen.uniform ~rng ~prefix:"f" ~vertices:1_000 ~edges:8_000 () in
      Loader.fast_install c g;
      Cluster.run_for c 5_000.0;
      let vertices = Array.of_list (Graphgen.vertex_ids g) in
      let r = Tao.Driver.run c ~vertices ~clients:20 ~duration:200_000.0 ~read_fraction:0.9 () in
      let ops = max 1 r.Tao.Driver.completed in
      let ctr = Cluster.counters c in
      line "%-12.0f %20.3f %22.3f" tau
        (float_of_int ctr.Runtime.announce_msgs /. float_of_int ops)
        (float_of_int ctr.Runtime.oracle_consults /. float_of_int ops))
    [ 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0; 1_000_000.0 ]

(* ------------------------------------------------------------------ *)
(* Ablations (ours; DESIGN.md A1-A3).                                  *)

let ablation_cache () =
  header "Ablation A1: node-program memoization (par. 4.6)";
  let run memo =
    let cfg =
      { Config.default with Config.enable_memoization = memo; Config.n_gatekeepers = 1; Config.seed = 21 }
    in
    let c = mk_cluster cfg in
    let rng = Xrand.create ~seed:21 () in
    let g = Graphgen.uniform ~rng ~prefix:"m" ~vertices:500 ~edges:4_000 () in
    Loader.fast_install c g;
    Cluster.run_for c 5_000.0;
    let client = Cluster.client c in
    let lat = Stats.create () in
    (* hot query set with occasional invalidating writes *)
    for i = 0 to 199 do
      let v = Graphgen.vid g (i mod 10) in
      let lat_i, _ = timed_program c client ~prog:"get_node" ~params:Progval.Null ~starts:[ v ] in
      Stats.add lat lat_i;
      if i mod 50 = 49 then begin
        let tx = Client.Tx.begin_ client in
        Client.Tx.set_vertex_prop tx ~vid:(Graphgen.vid g 0) ~key:"x" ~value:(string_of_int i);
        ignore (Client.commit client tx)
      end
    done;
    (lat, Cluster.counters c)
  in
  let off, _ = run false in
  let on_, ctr = run true in
  line "memoization off: mean %.0f us" (Stats.mean off);
  line "memoization on : mean %.0f us (hits %d, invalidations %d)" (Stats.mean on_)
    ctr.Runtime.memo_hits ctr.Runtime.memo_invalidations;
  line "speedup: %.1fx" (Stats.mean off /. Stats.mean on_)

let ablation_truetime () =
  header "Ablation A2: TrueTime-style first stage vs vector clocks (par. 3.5)";
  (* measure Weaver's actual commit latency, then show what a TrueTime
     first stage would add: a commit-wait of 2*eps per transaction *)
  let cfg = { Config.default with Config.seed = 22 } in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx0 = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx0 ~id:"tt" ());
  ignore (Client.commit client tx0);
  let lat = Stats.create () in
  for i = 0 to 49 do
    let tx = Client.Tx.begin_ client in
    Client.Tx.set_vertex_prop tx ~vid:"tt" ~key:"v" ~value:(string_of_int i);
    let t0 = Cluster.now c in
    ignore (Client.commit client tx);
    Stats.add lat (Cluster.now c -. t0)
  done;
  let base = Stats.mean lat in
  line "%-16s %16s %12s" "eps (us)" "commit lat (us)" "overhead";
  line "%-16s %16.0f %12s" "vclock (ours)" base "1.0x";
  List.iter
    (fun eps ->
      let tt = base +. (2.0 *. eps) in
      line "%-16.0f %16.0f %11.1fx" eps tt (tt /. base))
    [ 100.0; 500.0; 1_000.0; 5_000.0; 10_000.0 ]

let ablation_partition () =
  header "Ablation A3: partition quality and cross-shard traffic (par. 4.6)";
  let rng = Xrand.create ~seed:23 () in
  let g = Graphgen.preferential ~rng ~prefix:"p" ~vertices:2_000 ~out_degree:6 () in
  let adjacency = Graphgen.adjacency g in
  let shards = 8 in
  let hash_assign : Partition.assignment = Hashtbl.create 2048 in
  List.iter
    (fun (v, _) -> Hashtbl.replace hash_assign v (Partition.hash_vertex ~shards v))
    adjacency;
  let schemes =
    [
      ("hash", hash_assign);
      ("ldg", Partition.ldg ~shards adjacency);
      ("restream5", Partition.restream ~shards ~rounds:5 adjacency);
    ]
  in
  line "%-12s %10s %10s %22s" "scheme" "edge-cut" "balance" "prog msgs / query";
  List.iter
    (fun (name, assign) ->
      let cfg = { Config.default with Config.n_shards = shards; Config.seed = 23 } in
      let c = mk_cluster cfg in
      Loader.fast_install_with_assignment c assign g;
      Cluster.run_for c 5_000.0;
      let client = Cluster.client c in
      let m0 = (Cluster.counters c).Runtime.prog_batch_msgs in
      let qrng = Xrand.create ~seed:231 () in
      let queries = 30 in
      for _ = 1 to queries do
        let src = Graphgen.vid g (Xrand.int qrng g.Graphgen.n_vertices) in
        ignore
          (ok_exn "nhop"
             (Client.run_program client ~prog:"nhop_count"
                ~params:(Progval.Assoc [ ("depth", Progval.Int 2) ])
                ~starts:[ src ] ()))
      done;
      let msgs = (Cluster.counters c).Runtime.prog_batch_msgs - m0 in
      line "%-12s %10.3f %10.3f %22.1f" name
        (Partition.edge_cut assign adjacency)
        (Partition.balance assign ~shards)
        (float_of_int msgs /. float_of_int queries))
    schemes;
  (* live rebalancing (§4.6): start from hash placement and migrate vertices
     while the cluster is running, then measure again *)
  let cfg = { Config.default with Config.n_shards = shards; Config.seed = 23 } in
  let c = mk_cluster cfg in
  Loader.fast_install_with_assignment c hash_assign g;
  Cluster.run_for c 5_000.0;
  let client = Cluster.client c in
  let run_queries () =
    let m0 = (Cluster.counters c).Runtime.prog_batch_msgs in
    let qrng = Xrand.create ~seed:232 () in
    for _ = 1 to 30 do
      let src = Graphgen.vid g (Xrand.int qrng g.Graphgen.n_vertices) in
      ignore
        (ok_exn "nhop"
           (Client.run_program client ~prog:"nhop_count"
              ~params:(Progval.Assoc [ ("depth", Progval.Int 2) ])
              ~starts:[ src ] ()))
    done;
    float_of_int ((Cluster.counters c).Runtime.prog_batch_msgs - m0) /. 30.0
  in
  let before_msgs = run_queries () in
  let r = Rebalance.run c client ~max_moves:2_000 ~rounds:3 () in
  let after_msgs = run_queries () in
  line "live rebalance: %d moves, edge-cut %.3f -> %.3f, prog msgs/query %.1f -> %.1f"
    r.Rebalance.moved r.Rebalance.edge_cut_before r.Rebalance.edge_cut_after before_msgs
    after_msgs

let ablation_nop () =
  header "Ablation A4: NOP period bounds node-program delay (par. 4.2)";
  (* single gatekeeper isolates the NOP effect: a program may run as soon
     as the next NOP (or transaction) proves no earlier work is pending,
     so read latency tracks the NOP period *)
  line "%-16s %18s" "nop period (us)" "get_node p50 (us)";
  List.iter
    (fun nop_period ->
      let cfg =
        {
          Config.default with
          Config.n_gatekeepers = 1;
          Config.n_shards = 2;
          Config.nop_period;
          Config.seed = 24;
        }
      in
      let c = mk_cluster cfg in
      let rng = Xrand.create ~seed:24 () in
      let g = Graphgen.uniform ~rng ~prefix:"n" ~vertices:200 ~edges:1_000 () in
      Loader.fast_install c g;
      Cluster.run_for c 5_000.0;
      let client = Cluster.client c in
      let lat = Stats.create () in
      for i = 0 to 99 do
        let v = Graphgen.vid g (i mod 200) in
        let l, _ = timed_program c client ~prog:"get_node" ~params:Progval.Null ~starts:[ v ] in
        Stats.add lat l
      done;
      line "%-16.0f %18.0f" nop_period (Stats.percentile lat 50.0))
    [ 10.0; 50.0; 100.0; 500.0; 1_000.0 ]

let ablation_replicas () =
  header "Ablation A5: read-only shard replicas (par. 6.4)";
  (* shard-bound fan-out reads: replicas take weak-consistency traffic off
     the primaries, roughly doubling read capacity per replica *)
  let run ~replicas ~consistency =
    let cfg =
      {
        Config.default with
        Config.n_shards = 4;
        Config.read_replicas = replicas;
        Config.vertex_read_cost = 50.0;
        Config.seed = 25;
      }
    in
    let c = mk_cluster cfg in
    let rng = Xrand.create ~seed:25 () in
    let g = Graphgen.uniform ~rng ~prefix:"r" ~vertices:1_000 ~edges:20_000 () in
    Loader.fast_install c g;
    Cluster.run_for c 5_000.0;
    let vertices = Array.of_list (Graphgen.vertex_ids g) in
    let completed = ref 0 in
    for _ = 1 to 80 do
      let client = Cluster.client c in
      let vrng = Xrand.split (Weaver_sim.Engine.rng (Cluster.runtime c).Runtime.engine) in
      let rec loop () =
        let v = vertices.(Xrand.int vrng (Array.length vertices)) in
        Client.run_program_async client ~prog:"clustering" ~params:Progval.Null
          ~starts:[ v ] ~consistency
          ~on_result:(fun _ ->
            incr completed;
            loop ())
          ()
      in
      loop ()
    done;
    let duration = 200_000.0 in
    Cluster.run_for c duration;
    float_of_int !completed /. (duration /. 1e6)
  in
  let strong = run ~replicas:0 ~consistency:`Strong in
  let weak1 = run ~replicas:1 ~consistency:`Weak in
  let weak2 = run ~replicas:2 ~consistency:`Weak in
  line "%-28s %12s" "configuration" "queries/s";
  line "%-28s %12.0f" "primaries only (strong)" strong;
  line "%-28s %12.0f" "1 replica/shard (weak)" weak1;
  line "%-28s %12.0f" "2 replicas/shard (weak)" weak2;
  line "weak reads may be stale by the replication lag (one network hop)"

let ablation_adaptive_tau () =
  header "Ablation A6: dynamic clock-synchronization period (par. 3.5)";
  let run ~adaptive ~tau ~clients =
    let cfg =
      {
        Config.default with
        Config.adaptive_tau = adaptive;
        Config.tau;
        Config.n_shards = 4;
        Config.seed = 26;
      }
    in
    let c = mk_cluster cfg in
    let rng = Xrand.create ~seed:26 () in
    let g = Graphgen.uniform ~rng ~prefix:"a" ~vertices:500 ~edges:4_000 () in
    Loader.fast_install c g;
    Cluster.run_for c 5_000.0;
    let vertices = Array.of_list (Graphgen.vertex_ids g) in
    let r = Tao.Driver.run c ~vertices ~clients ~duration:500_000.0 ~read_fraction:0.9 () in
    let ops = max 1 r.Tao.Driver.completed in
    let ctr = Cluster.counters c in
    ( float_of_int ctr.Runtime.announce_msgs /. float_of_int ops,
      float_of_int ctr.Runtime.oracle_consults /. float_of_int ops,
      Cluster.gk_tau c 0 )
  in
  line "%-26s %16s %18s %14s" "configuration" "announces/query" "oracle msgs/query" "final tau(us)";
  List.iter
    (fun (label, adaptive, tau, clients) ->
      let a, o, t = run ~adaptive ~tau ~clients in
      line "%-26s %16.3f %18.3f %14.0f" label a o t)
    [
      ("fixed 10us, busy", false, 10.0, 40);
      ("fixed 100ms, busy", false, 100_000.0, 40);
      ("adaptive, busy", true, 1_000.0, 40);
      ("fixed 10us, light", false, 10.0, 2);
      ("adaptive, light", true, 1_000.0, 2);
    ]

let ablation_freshness () =
  header "Ablation A7: update visibility vs Kineograph-style epochs (par. 7)";
  (* Weaver: a write is readable as soon as its commit returns; measure the
     gap between commit time and first successful strong read *)
  let cfg = { Config.default with Config.seed = 27 } in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx0 = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx0 ~id:"fresh" ());
  ignore (ok_exn "seed" (Client.commit client tx0));
  let weaver_staleness = Stats.create () in
  for i = 1 to 20 do
    let t0 = Cluster.now c in
    let tx = Client.Tx.begin_ client in
    Client.Tx.set_vertex_prop tx ~vid:"fresh" ~key:"v" ~value:(string_of_int i);
    ignore (ok_exn "write" (Client.commit client tx));
    (* first read that observes the new value *)
    let seen = ref false in
    while not !seen do
      match
        Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "fresh" ] ()
      with
      | Ok (Progval.List [ s ]) ->
          if Progval.assoc_opt "v" (Progval.assoc "props" s) = Some (Progval.Str (string_of_int i))
          then seen := true
      | _ -> ()
    done;
    Stats.add weaver_staleness (Cluster.now c -. t0)
  done;
  (* Kineograph model: updates visible at the next epoch seal *)
  let engine = Weaver_sim.Engine.create ~seed:27 () in
  let rngk = Xrand.create ~seed:27 () in
  let kg = Kineograph_like.create engine ~epoch_length:10_000_000.0 (* 10 s *) in
  let kine_staleness = Stats.create () in
  for i = 1 to 20 do
    Weaver_sim.Engine.run ~until:(Weaver_sim.Engine.now engine +. Xrand.float rngk 9_000_000.0) engine;
    Kineograph_like.update kg ~key:"fresh" ~value:i;
    (* advance until the write becomes visible, then record its age *)
    let visible = ref false in
    while not !visible do
      Weaver_sim.Engine.run ~until:(Weaver_sim.Engine.now engine +. 100_000.0) engine;
      if Kineograph_like.query kg ~key:"fresh" = Some i then visible := true
    done;
    match Kineograph_like.query_staleness kg ~key:"fresh" with
    | Some age -> Stats.add kine_staleness age
    | None -> ()
  done;
  line "%-22s %20s" "system" "update->visible (ms)";
  line "%-22s %20.1f" "weaver (mean)" (Stats.mean weaver_staleness /. 1e3);
  line "%-22s %20.1f" "kineograph (mean)" (Stats.mean kine_staleness /. 1e3);
  line "(Kineograph buffers updates for its 10 s epochs, par. 7; Weaver's
refinable timestamps make them visible within a commit round trip)"

(* ------------------------------------------------------------------ *)
(* Per-request latency breakdown from the causal tracer: where a
   transaction's latency goes (gatekeeper admission, store round trips,
   shard queueing, oracle waits) and what it costs in messages. Emits
   BENCH_breakdown.json next to the console table. *)

let breakdown () =
  header "Latency breakdown (traced mixed run)";
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 2;
      Config.n_shards = 4;
      Config.enable_tracing = true;
      Config.trace_capacity = 4096;
    }
  in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let rng = Xrand.create ~seed:11 () in
  let g = Graphgen.uniform ~rng ~prefix:"bd" ~vertices:500 ~edges:2_000 () in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  let n_txs = 200 and n_progs = 50 in
  let traces = ref [] in
  for i = 1 to n_txs do
    let tx = Client.Tx.begin_ client in
    let src = Xrand.pick rng vertices in
    ignore (Client.Tx.create_edge tx ~src ~dst:(Xrand.pick rng vertices));
    Client.Tx.set_vertex_prop tx ~vid:src ~key:"n" ~value:(string_of_int i);
    ignore (Client.commit client tx);
    traces := Client.last_request_id client :: !traces
  done;
  for _ = 1 to n_progs do
    ignore
      (Client.run_program client ~prog:"get_edges" ~params:Progval.Null
         ~starts:[ Xrand.pick rng vertices ] ())
  done;
  Cluster.run_for c 10_000.0;
  let m = Cluster.metrics c in
  let tr = Option.get (Cluster.request_tracer c) in
  let msgs_per_tx = Stats.create () in
  List.iter
    (fun id ->
      let n = Weaver_obs.Trace.message_count tr id in
      if n > 0 then Stats.add msgs_per_tx (float_of_int n))
    !traces;
  let ctr = Cluster.counters c in
  let committed = max 1 ctr.Runtime.tx_committed in
  let announce_per_tx =
    float_of_int ctr.Runtime.announce_msgs /. float_of_int committed
  in
  let phases =
    [
      ("admission", "gk.admission_wait");
      ("store", "gk.store_rtt");
      ("shard_queue", "shard.queue_wait");
      ("oracle", "shard.oracle_wait");
      ("tx_service", "gk.tx_service");
      ("prog_service", "gk.prog_service");
    ]
  in
  let reservoirs = Weaver_obs.Metrics.reservoirs m in
  line "%-14s %10s %10s %8s" "phase" "p50 (us)" "p99 (us)" "n";
  let rows =
    List.map
      (fun (label, name) ->
        match List.assoc_opt name reservoirs with
        | None ->
            line "%-14s %10s %10s %8d" label "-" "-" 0;
            (label, 0, 0.0, 0.0)
        | Some s ->
            let p50 = Stats.percentile s 50.0 and p99 = Stats.percentile s 99.0 in
            line "%-14s %10.1f %10.1f %8d" label p50 p99 (Stats.count s);
            (label, Stats.count s, p50, p99))
      phases
  in
  line "messages/tx: mean %.1f p99 %.0f | announces/committed tx: %.2f"
    (Stats.mean msgs_per_tx)
    (Stats.percentile msgs_per_tx 99.0)
    announce_per_tx;
  let oc = open_out "BENCH_breakdown.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"experiment\": \"breakdown\",\n  \"phases\": {";
  List.iteri
    (fun i (label, n, p50, p99) ->
      j "%s\n    \"%s\": {\"n\": %d, \"p50_us\": %.1f, \"p99_us\": %.1f}"
        (if i = 0 then "" else ",")
        label n p50 p99)
    rows;
  j "\n  },\n";
  j "  \"messages_per_tx\": {\"mean\": %.2f, \"p50\": %.0f, \"p99\": %.0f},\n"
    (Stats.mean msgs_per_tx)
    (Stats.percentile msgs_per_tx 50.0)
    (Stats.percentile msgs_per_tx 99.0);
  j "  \"announce_overhead\": {\"announces\": %d, \"per_committed_tx\": %.3f}\n"
    ctr.Runtime.announce_msgs announce_per_tx;
  j "}\n";
  close_out oc;
  line "wrote BENCH_breakdown.json"

(* ------------------------------------------------------------------ *)
(* Timeline: TAO-mix throughput sampled across a mid-run shard crash —
   the time-dimension view of the §4.3 recovery story. Emits
   BENCH_timeline.json with the full ops/s series and a dip/recovery
   summary. *)

let timeline () =
  header "Timeline: TAO-mix throughput across a shard crash and recovery";
  let period = 25_000.0 in
  let crash_at = 500_000.0 in
  let duration = 1_500_000.0 in
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 2;
      Config.n_shards = 4;
      Config.enable_timeline = true;
      Config.timeline_period = period;
    }
  in
  let c = mk_cluster cfg in
  let rng = Xrand.create ~seed:5 () in
  let g = Graphgen.uniform ~rng ~prefix:"tl" ~vertices:1_000 ~edges:4_000 () in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  let rt = Cluster.runtime c in
  Weaver_sim.Engine.schedule rt.Runtime.engine
    ~delay:(crash_at -. Cluster.now c)
    (fun () ->
      line "  [%.0f ms] killing shard 0" (crash_at /. 1000.0);
      Cluster.kill_shard c 0);
  ignore (Tao.Driver.run c ~vertices ~clients:20 ~duration ());
  let tl = Option.get (Cluster.timeline c) in
  let ops_series =
    (* committed txs + completed programs, as windowed per-second rates *)
    let progs = Weaver_obs.Timeline.rates tl "prog.completed" in
    List.map
      (fun (t, tx_rate) ->
        let p = match List.assoc_opt t progs with Some v -> v | None -> 0.0 in
        (t, tx_rate +. p))
      (Weaver_obs.Timeline.rates tl "tx.committed")
  in
  let mean = function
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let pre =
    mean (List.filter_map (fun (t, v) -> if t < crash_at then Some v else None) ops_series)
  in
  let dip =
    List.fold_left Float.min Float.infinity
      (List.filter_map
         (fun (t, v) ->
           if t >= crash_at && t <= crash_at +. 300_000.0 then Some v else None)
         ops_series)
  in
  let post =
    mean
      (List.filter_map
         (fun (t, v) -> if t > crash_at +. 500_000.0 then Some v else None)
         ops_series)
  in
  line "pre-crash %.0f ops/s | dip %.0f ops/s | post-recovery %.0f ops/s" pre dip post;
  line "recoveries: %d | epoch: %d" (Cluster.counters c).Runtime.recoveries
    (Cluster.epoch c);
  let oc = open_out "BENCH_timeline.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"experiment\": \"timeline\",\n";
  j "  \"period_us\": %.0f, \"crash_at_us\": %.0f, \"duration_us\": %.0f,\n" period
    crash_at duration;
  j "  \"series\": {\n    \"time_us\": [";
  List.iteri
    (fun i (t, _) -> j "%s%.0f" (if i = 0 then "" else ", ") t)
    ops_series;
  j "],\n    \"ops_per_s\": [";
  List.iteri
    (fun i (_, v) -> j "%s%.0f" (if i = 0 then "" else ", ") v)
    ops_series;
  j "]\n  },\n";
  j "  \"summary\": {\"pre_crash_ops_s\": %.0f, \"dip_ops_s\": %.0f, \
     \"post_recovery_ops_s\": %.0f, \"recoveries\": %d}\n"
    pre dip post (Cluster.counters c).Runtime.recoveries;
  j "}\n";
  close_out oc;
  line "wrote BENCH_timeline.json"

(* ------------------------------------------------------------------ *)
(* Chaos: TAO-style mix under a rolling crash/restart fault plan, client
   reliability layer off vs on — same seed, same plan, so the availability
   and recovery-time deltas isolate what retries + failure-aware routing +
   duplicate suppression buy. Emits BENCH_chaos.json with both runs. *)

let chaos () =
  header "Chaos: availability under rolling crashes, reliability off vs on";
  let base = { Chaosbench.default_opts with Chaosbench.co_seed = 42 } in
  let off = Chaosbench.run { base with Chaosbench.co_reliable = false } in
  let on_ = Chaosbench.run { base with Chaosbench.co_reliable = true } in
  let show tag (r : Chaosbench.result) =
    line "%-4s availability %.3f | ok %d err %d | p99 %.1f ms | recovery %s | retries %d dedup %d late %d"
      tag r.Chaosbench.r_availability r.Chaosbench.r_total_ok r.Chaosbench.r_total_err
      (r.Chaosbench.r_p99 /. 1_000.0)
      (match r.Chaosbench.r_recovery_time with
      | Some t -> Printf.sprintf "%.0f ms" (t /. 1_000.0)
      | None -> "never")
      r.Chaosbench.r_retries r.Chaosbench.r_dedup_hits r.Chaosbench.r_late_replies
  in
  show "off" off;
  show "on" on_;
  line "availability delta: +%.3f"
    (on_.Chaosbench.r_availability -. off.Chaosbench.r_availability);
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"chaos\",\n  \"seed\": %d,\n  \"off\": %s,\n  \"on\": %s\n}\n"
    base.Chaosbench.co_seed
    (Chaosbench.to_json off) (Chaosbench.to_json on_);
  close_out oc;
  line "wrote BENCH_chaos.json"

(* ------------------------------------------------------------------ *)
(* Contention: write-contention sweep over zipf-skewed keys on a single
   shard, comparing the historical blocking refinement (one consult
   freezes the whole shard event loop) against the non-blocking, coalesced
   path ([Config.oracle_nonblocking]). Writers pin themselves to distinct
   gatekeepers so their stamps stay mutually concurrent between announce
   rounds (large tau) and the undecided pairs genuinely reach the shard —
   same-key races are ordered proactively at the gatekeepers by the
   last-update check, so the skew knob trades shard-level (cross-key)
   conflicts against gatekeeper-level (same-key) aborts. Reports oracle
   consults per committed transaction and the commit-visibility tail
   (shard enqueue -> apply, the segment refinement stalls inflate; the
   gatekeeper ack path never waits on the shard, so client-observed ack
   latency is blind to the difference). Emits BENCH_contention.json. *)

type contention_run = {
  cr_committed : int;
  cr_aborted : int;
  cr_consults : int;
  cr_batched : int;
  cr_consults_per_tx : float;
  cr_p50_apply : float;
  cr_p99_apply : float;
  cr_p99_ack : float;
  cr_fingerprint : int * int * int * int * int * int;
}

let contention_arm ~nonblocking ~theta ~seed =
  let cfg =
    {
      Config.default with
      Config.seed;
      Config.n_gatekeepers = 3;
      Config.n_shards = 1;
      Config.tau = 50_000.0;
      Config.nop_period = 400.0;
      Config.oracle_nonblocking = nonblocking;
    }
  in
  let c = mk_cluster cfg in
  let n_keys = 16 in
  let setup = Cluster.client c in
  let tx = Client.Tx.begin_ setup in
  for i = 0 to n_keys - 1 do
    ignore (Client.Tx.create_vertex tx ~id:(Printf.sprintf "k%d" i) ())
  done;
  ok_exn "contention setup" (Client.commit setup tx);
  let writers = 9 and per_writer = 40 in
  let ack = Stats.create () in
  let done_writers = ref 0 in
  for i = 0 to writers - 1 do
    let client = Cluster.client c in
    Client.set_gatekeeper client (Some (i mod cfg.Config.n_gatekeepers));
    let rng = Xrand.create ~seed:(seed + (1_000 * (i + 1))) () in
    let committed = ref 0 and attempt = ref 0 in
    let rec next () =
      if !committed < per_writer then begin
        incr attempt;
        let k = Xrand.zipf rng ~n:n_keys ~theta in
        let t0 = Cluster.now c in
        let tx = Client.Tx.begin_ client in
        Client.Tx.set_vertex_prop tx ~vid:(Printf.sprintf "k%d" k) ~key:"n"
          ~value:(string_of_int !attempt);
        Client.commit_async client tx ~on_result:(fun r ->
            (match r with
            | Ok () ->
                incr committed;
                Stats.add ack (Cluster.now c -. t0)
            | Error _ -> () (* same-key OCC abort: retry with a fresh stamp *));
            next ())
      end
      else incr done_writers
    in
    next ()
  done;
  let budget = ref 4_000 in
  while !done_writers < writers && !budget > 0 do
    decr budget;
    Cluster.run_for c 1_000.0
  done;
  if !done_writers < writers then failwith "contention: writers stalled";
  Cluster.run_for c 50_000.0;
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  let apply =
    match
      List.assoc_opt "shard.queue_wait"
        (Weaver_obs.Metrics.reservoirs (Cluster.metrics c))
    with
    | Some s -> s
    | None -> Stats.create ()
  in
  {
    cr_committed = ctr.Runtime.tx_committed;
    cr_aborted = ctr.Runtime.tx_aborted;
    cr_consults = ctr.Runtime.shard_oracle_consults;
    cr_batched = ctr.Runtime.shard_oracle_batched;
    cr_consults_per_tx =
      float_of_int ctr.Runtime.shard_oracle_consults
      /. float_of_int (max 1 ctr.Runtime.tx_committed);
    cr_p50_apply = Stats.percentile apply 50.0;
    cr_p99_apply = Stats.percentile apply 99.0;
    cr_p99_ack = Stats.percentile ack 99.0;
    cr_fingerprint =
      ( ctr.Runtime.tx_committed,
        ctr.Runtime.tx_aborted,
        ctr.Runtime.shard_oracle_consults,
        ctr.Runtime.shard_oracle_batched,
        Weaver_sim.Net.messages_sent rt.Runtime.net,
        ctr.Runtime.nop_msgs );
  }

let contention () =
  header "Contention: skewed write races, blocking vs non-blocking refinement";
  let seed = 7 in
  let thetas = [ 0.0; 0.6; 0.9 ] in
  let sweep =
    List.map
      (fun theta ->
        let blocking = contention_arm ~nonblocking:false ~theta ~seed in
        let nonblocking = contention_arm ~nonblocking:true ~theta ~seed in
        (theta, blocking, nonblocking))
      thetas
  in
  line "%-6s %-12s %10s %9s %8s %12s %13s %13s %12s" "theta" "arm" "committed"
    "consults" "batched" "consults/tx" "p50 apply us" "p99 apply us"
    "p99 ack us";
  List.iter
    (fun (theta, bl, nb) ->
      let row tag (r : contention_run) =
        line "%-6.1f %-12s %10d %9d %8d %12.3f %13.1f %13.1f %12.1f" theta tag
          r.cr_committed r.cr_consults r.cr_batched r.cr_consults_per_tx
          r.cr_p50_apply r.cr_p99_apply r.cr_p99_ack
      in
      row "blocking" bl;
      row "nonblocking" nb)
    sweep;
  (* determinism: the non-blocking arm at the highest skew reruns to the
     identical counter fingerprint *)
  let hot = List.hd (List.rev thetas) in
  let again = contention_arm ~nonblocking:true ~theta:hot ~seed in
  let _, _, hot_nb = List.hd (List.rev sweep) in
  let deterministic = again.cr_fingerprint = hot_nb.cr_fingerprint in
  line "deterministic rerun (theta %.1f): %b" hot deterministic;
  if not deterministic then failwith "contention: rerun diverged";
  List.iter
    (fun (theta, bl, nb) ->
      if nb.cr_consults_per_tx >= bl.cr_consults_per_tx then
        failwith
          (Printf.sprintf
             "contention: consults/tx did not decrease at theta %.1f" theta);
      if nb.cr_p99_apply > bl.cr_p99_apply || nb.cr_p50_apply >= bl.cr_p50_apply
      then
        failwith
          (Printf.sprintf "contention: latency did not improve at theta %.1f"
             theta))
    sweep;
  let oc = open_out "BENCH_contention.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"experiment\": \"contention\",\n  \"seed\": %d,\n" seed;
  j "  \"workload\": {\"writers\": 9, \"commits_per_writer\": 40, \"keys\": 16, \"shards\": 1, \"gatekeepers\": 3},\n";
  j "  \"sweep\": [";
  List.iteri
    (fun i (theta, bl, nb) ->
      let arm (r : contention_run) =
        Printf.sprintf
          "{\"committed\": %d, \"aborted\": %d, \"consults\": %d, \"batched\": %d, \"consults_per_committed_tx\": %.4f, \"p50_commit_apply_us\": %.1f, \"p99_commit_apply_us\": %.1f, \"p99_commit_ack_us\": %.1f}"
          r.cr_committed r.cr_aborted r.cr_consults r.cr_batched
          r.cr_consults_per_tx r.cr_p50_apply r.cr_p99_apply r.cr_p99_ack
      in
      j "%s\n    {\"theta\": %.1f,\n     \"blocking\": %s,\n     \"nonblocking\": %s}"
        (if i = 0 then "" else ",")
        theta (arm bl) (arm nb))
    sweep;
  j "\n  ],\n  \"deterministic_rerun\": %b\n}\n" deterministic;
  close_out oc;
  line "wrote BENCH_contention.json"

(* ------------------------------------------------------------------ *)
(* Overload: open-loop offered-load sweep across the admission-capacity
   knee, flow control (admission limit + deadline shedding + shard
   credits, §DESIGN 11) off vs on. The off arm collapses past saturation
   (every queued request eventually times out); the on arm sheds the
   excess early and keeps goodput at capacity with a bounded tail.
   Control traffic (NOPs, heartbeats) is exempt from shedding, so its
   counters must match across arms. Emits BENCH_overload.json. *)

let overload () =
  header "Overload: open-loop goodput sweep, flow control off vs on";
  let base = Overloadbench.default_opts in
  let sat =
    Overloadbench.saturation_rate ~gatekeepers:base.Overloadbench.ov_gatekeepers
      ~gk_op_cost:Config.default.Config.gk_op_cost
  in
  line "saturation ~= %.0f req/s (%d gatekeepers x %.0f us/admit)" sat
    base.Overloadbench.ov_gatekeepers Config.default.Config.gk_op_cost;
  let mults = [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let arm ~flow mult =
    Overloadbench.run
      { base with Overloadbench.ov_flow = flow; Overloadbench.ov_rate = sat *. mult }
  in
  let sweep =
    List.map (fun mult -> (mult, arm ~flow:false mult, arm ~flow:true mult)) mults
  in
  line "%-6s %-5s %9s %9s %8s %8s %8s %10s %10s %9s" "load" "arm" "offered"
    "ok" "shed" "timeout" "goodput" "p50 us" "p99 us" "shed%";
  List.iter
    (fun (mult, off, on_) ->
      let row tag (r : Overloadbench.result) =
        line "%-6.2f %-5s %9d %9d %8d %8d %8.0f %10.1f %10.1f %9.1f" mult tag
          r.Overloadbench.v_offered r.Overloadbench.v_ok r.Overloadbench.v_shed
          r.Overloadbench.v_timeout r.Overloadbench.v_goodput
          r.Overloadbench.v_p50 r.Overloadbench.v_p99
          (100.0 *. r.Overloadbench.v_shed_rate)
      in
      row "off" off;
      row "on" on_)
    sweep;
  let find mult = List.find (fun (m, _, _) -> m = mult) sweep in
  (* peak-capacity goodput: the on arm at the knee *)
  let _, _, on_1x = find 1.0 in
  let _, off_2x, on_2x = find 2.0 in
  let peak = on_1x.Overloadbench.v_goodput in
  line "at 2x: goodput on %.0f (peak %.0f) vs off %.0f | p99 on %.1f us vs off %.1f us"
    on_2x.Overloadbench.v_goodput peak off_2x.Overloadbench.v_goodput
    on_2x.Overloadbench.v_p99 off_2x.Overloadbench.v_p99;
  if on_2x.Overloadbench.v_goodput < 0.9 *. peak then
    failwith "overload: on-arm goodput at 2x fell below 90% of peak";
  if off_2x.Overloadbench.v_goodput > 0.7 *. peak then
    failwith "overload: off arm did not collapse at 2x saturation";
  if on_2x.Overloadbench.v_p99 > 10.0 *. on_1x.Overloadbench.v_p99 then
    failwith "overload: on-arm p99 not bounded at 2x saturation";
  (* control traffic is never shed: NOP and heartbeat counts are timer
     driven and must be identical across arms at every offered load *)
  List.iter
    (fun (mult, off, on_) ->
      if
        off.Overloadbench.v_nop_msgs <> on_.Overloadbench.v_nop_msgs
        || off.Overloadbench.v_heartbeats <> on_.Overloadbench.v_heartbeats
      then
        failwith
          (Printf.sprintf "overload: control traffic diverged at %.2fx" mult))
    sweep;
  (* determinism: the on arm at 2x reruns to the identical fingerprint *)
  let again = arm ~flow:true 2.0 in
  let deterministic =
    again.Overloadbench.v_fingerprint = on_2x.Overloadbench.v_fingerprint
  in
  line "deterministic rerun (2x, flow on): %b" deterministic;
  if not deterministic then failwith "overload: rerun diverged";
  let oc = open_out "BENCH_overload.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"experiment\": \"overload\",\n  \"seed\": %d,\n"
    base.Overloadbench.ov_seed;
  j "  \"saturation_rps\": %.0f,\n" sat;
  j "  \"knobs\": {\"admission_limit\": %d, \"deadline_budget_us\": %.0f, \"shard_credits\": %d},\n"
    base.Overloadbench.ov_admission_limit base.Overloadbench.ov_deadline_budget
    base.Overloadbench.ov_shard_credits;
  j "  \"sweep\": [";
  List.iteri
    (fun i (mult, off, on_) ->
      j "%s\n    {\"load_multiplier\": %.2f,\n     \"off\": %s,\n     \"on\": %s}"
        (if i = 0 then "" else ",")
        mult
        (Overloadbench.to_json off)
        (Overloadbench.to_json on_))
    sweep;
  j "\n  ],\n  \"deterministic_rerun\": %b\n}\n" deterministic;
  close_out oc;
  line "wrote BENCH_overload.json"

(* ------------------------------------------------------------------ *)
(* Snapshot reads: historical analytics latency and concurrent write
   throughput with the versioned snapshot store (§DESIGN 12) off vs on.
   Capacity-limited shards make the off arm pay demand paging for every
   cold historical lookup and hold each program at the ordering gate
   behind live write traffic; the on arm pins a published immutable
   snapshot, skips the gate, and reads at zero per-vertex cost. Writers
   must not slow down: snapshots are built off the durable store at
   watermark boundaries, never by locking the live graph. Emits
   BENCH_snapshot.json. *)

type snapshot_run = {
  sr_writes : int;
  sr_reads : int;
  sr_gced : int;  (** cut re-captures forced by the compaction watermark *)
  sr_p50_read : float;
  sr_p99_read : float;
  sr_published : int;
  sr_pinned : int;
  sr_deferred : int;
  sr_fingerprint : int * int * int * int * int * int;
}

let snapshot_arm ~snap ~seed =
  let cfg =
    {
      Config.default with
      Config.seed;
      Config.n_gatekeepers = 2;
      Config.n_shards = 4;
      Config.snapshot_reads = snap;
      Config.gc_period = 5_000.0;
      Config.shard_capacity = Some 120;
    }
  in
  let c = mk_cluster cfg in
  let n_vertices = 600 in
  let vid i = Printf.sprintf "s%03d" i in
  let setup = Cluster.client c in
  let i = ref 0 in
  while !i < n_vertices do
    let tx = Client.Tx.begin_ setup in
    for k = !i to min (n_vertices - 1) (!i + 49) do
      ignore (Client.Tx.create_vertex tx ~id:(vid k) ())
    done;
    i := !i + 50;
    ok_exn "snapshot setup" (Client.commit setup tx)
  done;
  Cluster.run_for c 50_000.0;
  (* the analytics cut: everything below this stamp is history *)
  let at0 = Cluster.gk_clock c 0 in
  let starts = List.init 64 (fun k -> vid (k * 9 mod n_vertices)) in
  let stop = ref false in
  (* TAO-style write mix: continuous single-vertex property updates across
     the whole key range, hot enough to keep every shard's queues fed *)
  let writes = ref 0 in
  for w = 0 to 3 do
    let client = Cluster.client c in
    Client.set_gatekeeper client (Some (w mod cfg.Config.n_gatekeepers));
    let rng = Xrand.create ~seed:(seed + (1_000 * (w + 1))) () in
    let n = ref 0 in
    let rec next () =
      if not !stop then begin
        incr n;
        let tx = Client.Tx.begin_ client in
        Client.Tx.set_vertex_prop tx
          ~vid:(vid (Xrand.int rng n_vertices))
          ~key:"n" ~value:(string_of_int !n);
        Client.commit_async client tx ~on_result:(fun r ->
            (match r with Ok () -> incr writes | Error _ -> ());
            next ())
      end
    in
    next ()
  done;
  (* analytics: repeated multi-start historical reads at the pinned cut.
     When the cut falls below the compaction watermark the shard replies
     the retryable "snapshot-gced" (the silent-stale-read bugfix); the
     client then re-captures a fresh cut, exactly what a real analytics
     driver would do. The on arm pins published snapshots, so its cut
     stays readable far longer. *)
  let lat = Stats.create () in
  let reads = ref 0 and gced = ref 0 in
  let at = ref at0 in
  let analyst = Cluster.client c in
  Client.set_retry_policy analyst Client.no_retry_policy;
  let rec read_next () =
    if not !stop then begin
      let t0 = Cluster.now c in
      Client.run_program_async analyst ~prog:"get_node" ~params:Progval.Null
        ~starts ~at:!at
        ~on_result:(fun r ->
          (match r with
          | Ok _ ->
              incr reads;
              Stats.add lat (Cluster.now c -. t0)
          | Error "snapshot-gced" ->
              incr gced;
              at := Cluster.gk_clock c 0
          | Error e -> failwith ("snapshot: analytics failed: " ^ e));
          read_next ())
        ()
    end
  in
  read_next ();
  Cluster.run_for c 400_000.0;
  stop := true;
  Cluster.run_for c 50_000.0;
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  {
    sr_writes = !writes;
    sr_reads = !reads;
    sr_gced = !gced;
    sr_p50_read = Stats.percentile lat 50.0;
    sr_p99_read = Stats.percentile lat 99.0;
    sr_published = ctr.Runtime.snap_published;
    sr_pinned = ctr.Runtime.snap_pinned_reads;
    sr_deferred = ctr.Runtime.snap_gc_deferred;
    sr_fingerprint =
      ( !writes,
        !reads,
        ctr.Runtime.tx_committed,
        ctr.Runtime.snap_published,
        ctr.Runtime.snap_pinned_reads,
        Weaver_sim.Net.messages_sent rt.Runtime.net );
  }

let snapshot () =
  header "Snapshot reads: pinned historical analytics vs live write mix";
  let seed = 11 in
  let off = snapshot_arm ~snap:false ~seed in
  let on_ = snapshot_arm ~snap:true ~seed in
  let row tag (r : snapshot_run) =
    line "%-4s %8d %8d %6d %12.1f %12.1f %10d %8d %9d" tag r.sr_writes
      r.sr_reads r.sr_gced r.sr_p50_read r.sr_p99_read r.sr_published
      r.sr_pinned r.sr_deferred
  in
  line "%-4s %8s %8s %6s %12s %12s %10s %8s %9s" "arm" "writes" "reads" "gced"
    "p50 us" "p99 us" "published" "pinned" "deferred";
  row "off" off;
  row "on" on_;
  (* the tail is where gate waits and demand paging land; the median is
     dominated by network round trips in both arms, so require a solid
     tail win and a no-worse median *)
  if on_.sr_p99_read >= 0.8 *. off.sr_p99_read || on_.sr_p50_read > off.sr_p50_read
  then failwith "snapshot: analytics latency did not improve";
  if float_of_int off.sr_writes > 1.1 *. float_of_int on_.sr_writes then
    failwith "snapshot: write throughput regressed beyond noise";
  if on_.sr_published = 0 || on_.sr_pinned = 0 then
    failwith "snapshot: on arm never pinned a snapshot";
  if off.sr_published <> 0 || off.sr_pinned <> 0 then
    failwith "snapshot: off arm touched snapshot counters";
  (* determinism: the on arm reruns to the identical fingerprint *)
  let again = snapshot_arm ~snap:true ~seed in
  let deterministic = again.sr_fingerprint = on_.sr_fingerprint in
  line "deterministic rerun (snapshots on): %b" deterministic;
  if not deterministic then failwith "snapshot: rerun diverged";
  let oc = open_out "BENCH_snapshot.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"experiment\": \"snapshot\",\n  \"seed\": %d,\n" seed;
  j "  \"workload\": {\"vertices\": 600, \"writers\": 4, \"analytics_starts\": 64, \"shards\": 4, \"gatekeepers\": 2, \"shard_capacity\": 120, \"gc_period_us\": 5000},\n";
  j "  \"arms\": {";
  let arm (r : snapshot_run) =
    Printf.sprintf
      "{\"writes\": %d, \"reads\": %d, \"cut_recaptures\": %d, \"p50_read_us\": %.1f, \"p99_read_us\": %.1f, \"snapshots_published\": %d, \"pinned_reads\": %d, \"gc_deferred\": %d}"
      r.sr_writes r.sr_reads r.sr_gced r.sr_p50_read r.sr_p99_read
      r.sr_published r.sr_pinned r.sr_deferred
  in
  j "\n    \"off\": %s,\n    \"on\": %s\n  },\n" (arm off) (arm on_);
  j "  \"deterministic_rerun\": %b\n}\n" deterministic;
  close_out oc;
  line "wrote BENCH_snapshot.json"

(* ------------------------------------------------------------------ *)
(* Skew: heat-attribution accuracy and cost under zipf-skewed writes.
   Closed-loop writers issue single-vertex property writes over 128 keys
   with zipf-ranked selection; the exact per-key touch tally (setup create
   + every committed write) is the ground truth the per-shard Space-Saving
   sketches are scored against. Reports, per theta: merged top-K
   precision/recall vs the true hottest set (tie-tolerant: a pick counts
   if its true tally reaches the K-th largest — under light skew many keys
   tie at the boundary and any of them is a correct answer). Then: an
   induced mid-run hot-spot flip (rank->key mapping rotated by half the
   keyspace) with the virtual-time detection latency until the new hottest
   key enters the merged top-K; the heat-on vs heat-off cost (virtual
   write throughput must be bit-identical — recording never schedules
   events — plus wall-clock CPU time, informational); and a deterministic
   rerun (counter fingerprint and heat JSON both identical). Emits
   BENCH_skew.json. *)

type skew_run = {
  sk_committed : int;
  sk_aborted : int;
  sk_precision : float;
  sk_recall : float;
  sk_throughput : float;  (* committed writes per virtual second *)
  sk_cpu_s : float;  (* wall-clock, informational *)
  sk_cross : int;  (* cross-shard touches recorded (setup fan-out) *)
  sk_fingerprint : int * int * int * int * int;
  sk_heat_json : string;  (* "" when heat is off *)
}

let skew_keys = 128
let skew_k = 8
let skew_key i = Printf.sprintf "z%03d" i

let skew_cfg ~heat ~seed =
  {
    Config.default with
    Config.seed;
    Config.n_gatekeepers = 2;
    Config.n_shards = 4;
    Config.enable_heat = heat;
    Config.heat_topk = 16;
    (* over-provision the sketch 2x vs the reported K, standard practice *)
    Config.heat_ranges = 64;
  }

(* merged cluster-wide top-K: per-shard sketch tables ranked together by
   estimate, ties on the key — same deterministic order as Sketch.top *)
let skew_merged_top c ~k =
  match Cluster.heat c with
  | None -> []
  | Some h ->
      List.concat
        (List.init (Weaver_obs.Heat.shards h) (fun s ->
             Weaver_obs.Heat.top h ~shard:s))
      |> List.sort (fun (ka, ca, _) (kb, cb, _) ->
             if ca <> cb then compare cb ca else String.compare ka kb)
      |> List.filteri (fun i _ -> i < k)

(* spawn [writers] closed-loop writers, each committing [per_writer]
   single-key property writes with zipf(theta)-ranked key selection
   through [rank_to_key]; tallies ground truth into [true_counts] *)
let skew_writers c ~writers ~per_writer ~theta ~seed ~rank_to_key ~true_counts =
  let done_writers = ref 0 in
  for i = 0 to writers - 1 do
    let client = Cluster.client c in
    let rng = Xrand.create ~seed:(seed + (1_000 * (i + 1))) () in
    let committed = ref 0 and attempt = ref 0 in
    let rec next () =
      if !committed < per_writer then begin
        incr attempt;
        let key_ix = rank_to_key (Xrand.zipf rng ~n:skew_keys ~theta) in
        let tx = Client.Tx.begin_ client in
        Client.Tx.set_vertex_prop tx ~vid:(skew_key key_ix) ~key:"n"
          ~value:(string_of_int !attempt);
        Client.commit_async client tx ~on_result:(fun r ->
            (match r with
            | Ok () ->
                incr committed;
                true_counts.(key_ix) <- true_counts.(key_ix) + 1
            | Error _ -> ());
            next ())
      end
      else incr done_writers
    in
    next ()
  done;
  done_writers

let skew_drain c ~done_writers ~writers ~label =
  let budget = ref 4_000 in
  while !done_writers < writers && !budget > 0 do
    decr budget;
    Cluster.run_for c 1_000.0
  done;
  if !done_writers < writers then failwith (label ^ ": writers stalled")

(* tie-tolerant scoring: a pick is correct if its true tally reaches the
   K-th largest tally; recall is over the keys strictly above that bar
   (the picks no correct answer may omit) *)
let skew_score ~true_counts picks =
  let sorted = Array.copy true_counts in
  Array.sort (fun a b -> compare b a) sorted;
  let threshold = sorted.(skew_k - 1) in
  let true_of key = true_counts.(int_of_string (String.sub key 1 3)) in
  let correct = List.filter (fun (key, _, _) -> true_of key >= threshold) picks in
  let definite = ref [] in
  Array.iteri
    (fun i n -> if n > threshold then definite := skew_key i :: !definite)
    true_counts;
  let found =
    List.filter (fun key -> List.exists (fun (k, _, _) -> k = key) picks) !definite
  in
  let precision = float_of_int (List.length correct) /. float_of_int skew_k in
  let recall =
    if !definite = [] then 1.0 (* every key ties at the bar: nothing to miss *)
    else float_of_int (List.length found) /. float_of_int (List.length !definite)
  in
  (precision, recall)

let skew_arm ~heat ~theta ~seed =
  let cpu0 = Sys.time () in
  let c = mk_cluster (skew_cfg ~heat ~seed) in
  let setup = Cluster.client c in
  let tx = Client.Tx.begin_ setup in
  for i = 0 to skew_keys - 1 do
    ignore (Client.Tx.create_vertex tx ~id:(skew_key i) ())
  done;
  (* one 128-key create fanning out to all 4 shards: the cross-shard touch
     path gets exercised before the single-shard writer phase *)
  ok_exn "skew setup" (Client.commit setup tx);
  Cluster.run_for c 5_000.0;
  let true_counts = Array.make skew_keys 1 (* the setup create *) in
  let t0 = Cluster.now c in
  let done_writers =
    skew_writers c ~writers:8 ~per_writer:60 ~theta ~seed ~rank_to_key:(fun r -> r)
      ~true_counts
  in
  skew_drain c ~done_writers ~writers:8 ~label:"skew";
  let t1 = Cluster.now c in
  Cluster.run_for c 20_000.0;
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  let precision, recall =
    if heat then skew_score ~true_counts (skew_merged_top c ~k:skew_k)
    else (0.0, 0.0)
  in
  let cross =
    match Cluster.heat c with
    | Some h ->
        let n = ref 0 in
        for s = 0 to Weaver_obs.Heat.shards h - 1 do
          n := !n + Weaver_obs.Heat.total h ~shard:s ~kind:Weaver_obs.Heat.Cross
        done;
        !n
    | None -> 0
  in
  {
    sk_committed = ctr.Runtime.tx_committed;
    sk_aborted = ctr.Runtime.tx_aborted;
    sk_precision = precision;
    sk_recall = recall;
    sk_throughput = float_of_int (8 * 60) /. (t1 -. t0) *. 1.0e6;
    sk_cpu_s = Sys.time () -. cpu0;
    sk_cross = cross;
    sk_fingerprint =
      ( ctr.Runtime.tx_committed,
        ctr.Runtime.tx_aborted,
        ctr.Runtime.oracle_consults,
        Weaver_sim.Net.messages_sent rt.Runtime.net,
        ctr.Runtime.nop_msgs );
    sk_heat_json =
      (match Cluster.heat c with
      | Some h -> Weaver_obs.Export.heat_json h ~now:(Cluster.now c)
      | None -> "");
  }

(* the induced hot-spot flip: phase A writes through the identity rank
   mapping (hottest key z000), then the mapping rotates by half the
   keyspace (hottest key z064) and phase B polls the merged top-K until
   the new hottest key appears *)
let skew_flip ~seed =
  let theta = 0.9 in
  let c = mk_cluster (skew_cfg ~heat:true ~seed) in
  let setup = Cluster.client c in
  let tx = Client.Tx.begin_ setup in
  for i = 0 to skew_keys - 1 do
    ignore (Client.Tx.create_vertex tx ~id:(skew_key i) ())
  done;
  ok_exn "skew flip setup" (Client.commit setup tx);
  Cluster.run_for c 5_000.0;
  let true_counts = Array.make skew_keys 1 in
  let done_a =
    skew_writers c ~writers:8 ~per_writer:50 ~theta ~seed ~rank_to_key:(fun r -> r)
      ~true_counts
  in
  skew_drain c ~done_writers:done_a ~writers:8 ~label:"skew flip phase A";
  let flip_at = Cluster.now c in
  let new_hot = skew_key (skew_keys / 2) in
  let done_b =
    skew_writers c ~writers:8 ~per_writer:50 ~theta ~seed:(seed + 77)
      ~rank_to_key:(fun r -> (r + (skew_keys / 2)) mod skew_keys)
      ~true_counts
  in
  let detected = ref None in
  let budget = ref 4_000 in
  while !done_b < 8 && !budget > 0 do
    decr budget;
    Cluster.run_for c 500.0;
    if
      !detected = None
      && List.exists (fun (k, _, _) -> k = new_hot) (skew_merged_top c ~k:skew_k)
    then detected := Some (Cluster.now c -. flip_at)
  done;
  if !done_b < 8 then failwith "skew flip: writers stalled";
  !detected

let skew () =
  header "Skew: heavy-hitter sketch accuracy, flip detection, and heat cost";
  let seed = 11 in
  let thetas = [ 0.0; 0.6; 0.9; 1.1 ] in
  let sweep = List.map (fun theta -> (theta, skew_arm ~heat:true ~theta ~seed)) thetas in
  line "%-6s %10s %10s %11s %12s %8s" "theta" "committed" "precision" "recall"
    "writes/s" "cross";
  List.iter
    (fun (theta, r) ->
      line "%-6.1f %10d %10.3f %11.3f %12.0f %8d" theta r.sk_committed
        r.sk_precision r.sk_recall r.sk_throughput r.sk_cross)
    sweep;
  let hot = List.assoc 0.9 sweep in
  if hot.sk_precision < 0.9 then
    failwith
      (Printf.sprintf "skew: precision@%d %.3f < 0.9 at theta 0.9" skew_k
         hot.sk_precision);
  (* the heat-off arm: virtual outcomes must be bit-identical (recording
     never schedules events), so the write-throughput overhead is exactly
     zero; wall-clock CPU time is reported for the real cost *)
  let off = skew_arm ~heat:false ~theta:0.9 ~seed in
  if off.sk_fingerprint <> hot.sk_fingerprint then
    failwith "skew: heat-on fingerprint diverged from heat-off";
  let tp_overhead =
    abs_float (hot.sk_throughput -. off.sk_throughput) /. off.sk_throughput
  in
  line "heat-off arm: %.0f writes/s, overhead %.2f%% (cpu %.3fs off / %.3fs on)"
    off.sk_throughput (100.0 *. tp_overhead) off.sk_cpu_s hot.sk_cpu_s;
  if tp_overhead > 0.02 then failwith "skew: write-throughput overhead above 2%";
  (* induced hot-spot flip at theta 0.9: budget 25 virtual ms *)
  let flip_budget = 25_000.0 in
  (match skew_flip ~seed with
  | Some lat ->
      line "hot-spot flip detected after %.0f us (budget %.0f us)" lat flip_budget;
      if lat > flip_budget then failwith "skew: flip detection over budget"
  | None -> failwith "skew: flip never detected");
  let again = skew_arm ~heat:true ~theta:0.9 ~seed in
  let deterministic =
    again.sk_fingerprint = hot.sk_fingerprint && again.sk_heat_json = hot.sk_heat_json
  in
  line "deterministic rerun (theta 0.9): %b" deterministic;
  if not deterministic then failwith "skew: rerun diverged";
  let flip_lat = match skew_flip ~seed with Some l -> l | None -> 0.0 in
  let oc = open_out "BENCH_skew.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"experiment\": \"skew\",\n  \"seed\": %d,\n" seed;
  j "  \"workload\": {\"writers\": 8, \"commits_per_writer\": 60, \"keys\": %d, \"shards\": 4, \"gatekeepers\": 2, \"sketch_k\": 16, \"reported_k\": %d},\n"
    skew_keys skew_k;
  j "  \"sweep\": [";
  List.iteri
    (fun i (theta, r) ->
      j
        "%s\n    {\"theta\": %.1f, \"committed\": %d, \"aborted\": %d, \"precision_at_k\": %.4f, \"recall_at_k\": %.4f, \"writes_per_s\": %.0f, \"cross_touches\": %d}"
        (if i = 0 then "" else ",")
        theta r.sk_committed r.sk_aborted r.sk_precision r.sk_recall r.sk_throughput
        r.sk_cross)
    sweep;
  j "\n  ],\n";
  j
    "  \"overhead\": {\"heat_off_writes_per_s\": %.0f, \"heat_on_writes_per_s\": %.0f, \"throughput_overhead\": %.4f, \"cpu_s_off\": %.4f, \"cpu_s_on\": %.4f, \"fingerprint_identical\": true},\n"
    off.sk_throughput hot.sk_throughput tp_overhead off.sk_cpu_s hot.sk_cpu_s;
  j "  \"flip\": {\"theta\": 0.9, \"detection_latency_us\": %.0f, \"budget_us\": %.0f},\n"
    flip_lat flip_budget;
  j "  \"deterministic_rerun\": %b\n}\n" deterministic;
  close_out oc;
  line "wrote BENCH_skew.json"

(* -------------------------------------------------------------------- *)
(* Rebalance: elasticity under a migrating hot spot (§4.6). Closed-loop
   writers hammer a hot set of vertices that all live on shard 0; the
   live balancer senses the skew and spreads them. Mid-run the hot set
   flips to shard 1's residents: the on-arm's skew must return to within
   1.2× of its pre-flip (converged) value, while the rebalance-off arm
   stays pinned above the hysteresis bar. Goodput must stay within 10%
   of the off arm (migrations abort racing writers, not the reverse),
   and the whole run — move log included — reruns bit-identically.
   Emits BENCH_rebalance.json. *)

let reb_keys = 128
let reb_key i = Printf.sprintf "e%03d" i

let reb_cfg ~rebalance ~seed =
  {
    Config.default with
    Config.seed;
    Config.n_gatekeepers = 2;
    Config.n_shards = 4;
    Config.enable_heat = true;
    Config.enable_rebalance = rebalance;
    Config.rebalance_period = 10_000.0;
  }

type reb_arm = {
  rb_committed : int;
  rb_aborted : int;
  rb_skew_pre : float;  (* end of phase A: planner converged (on arm) *)
  rb_skew_spike : float;  (* shortly after the hot-set flip *)
  rb_skew_post : float;  (* end of phase B *)
  rb_goodput : float;  (* commits per virtual second, both phases *)
  rb_rounds : int;
  rb_moves : int;
  rb_skipped : int;
  rb_move_json : string;
  rb_fingerprint : int * int * int * int * int;
}

(* closed-loop single-key writers uniform over the hot set; aborted
   commits retry (they cost time, not commits — that is the goodput) *)
let reb_writers c ~writers ~per_writer ~seed ~hot =
  let done_writers = ref 0 in
  for i = 0 to writers - 1 do
    let client = Cluster.client c in
    let rng = Xrand.create ~seed:(seed + (101 * (i + 1))) () in
    let committed = ref 0 and attempt = ref 0 in
    let rec next () =
      if !committed < per_writer then begin
        incr attempt;
        let vid = hot.(Xrand.int rng (Array.length hot)) in
        let tx = Client.Tx.begin_ client in
        Client.Tx.set_vertex_prop tx ~vid ~key:"n" ~value:(string_of_int !attempt);
        Client.commit_async client tx ~on_result:(fun r ->
            (match r with Ok () -> incr committed | Error _ -> ());
            next ())
      end
      else incr done_writers
    in
    next ()
  done;
  done_writers

let reb_arm ~rebalance ~seed =
  let c = mk_cluster (reb_cfg ~rebalance ~seed) in
  let setup = Cluster.client c in
  let tx = Client.Tx.begin_ setup in
  for i = 0 to reb_keys - 1 do
    ignore (Client.Tx.create_vertex tx ~id:(reb_key i) ())
  done;
  ok_exn "rebalance setup" (Client.commit setup tx);
  Cluster.run_for c 5_000.0;
  (* hot sets by *initial* residency: phase A hammers shard 0's vertices,
     phase B shard 1's (untouched by phase A's moves, so the flip really
     does land the load on one cold shard) *)
  let residents s =
    Array.of_list
      (List.filter
         (fun v -> Cluster.shard_of_vertex c v = s)
         (List.init reb_keys reb_key))
  in
  let take16 a = Array.sub a 0 (min 16 (Array.length a)) in
  let hot_a = take16 (residents 0) and hot_b = take16 (residents 1) in
  let h = Option.get (Cluster.heat c) in
  let t0 = Cluster.now c in
  let done_a = reb_writers c ~writers:8 ~per_writer:120 ~seed ~hot:hot_a in
  skew_drain c ~done_writers:done_a ~writers:8 ~label:"rebalance phase A";
  let skew_pre = Weaver_obs.Heat.skew h ~now:(Cluster.now c) in
  let done_b =
    reb_writers c ~writers:8 ~per_writer:120 ~seed:(seed + 7) ~hot:hot_b
  in
  Cluster.run_for c 5_000.0;
  let skew_spike = Weaver_obs.Heat.skew h ~now:(Cluster.now c) in
  skew_drain c ~done_writers:done_b ~writers:8 ~label:"rebalance phase B";
  let skew_post = Weaver_obs.Heat.skew h ~now:(Cluster.now c) in
  let t1 = Cluster.now c in
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  let move_json =
    match Cluster.balancer c with
    | None -> "[]"
    | Some b ->
        "["
        ^ String.concat ", "
            (List.map
               (fun m ->
                 Printf.sprintf
                   "{\"t_us\": %.0f, \"vid\": \"%s\", \"from\": %d, \"to\": %d}"
                   m.Balancer.mv_time m.Balancer.mv_vid m.Balancer.mv_from
                   m.Balancer.mv_to)
               (Balancer.move_log b))
        ^ "]"
  in
  {
    rb_committed = ctr.Runtime.tx_committed;
    rb_aborted = ctr.Runtime.tx_aborted;
    rb_skew_pre = skew_pre;
    rb_skew_spike = skew_spike;
    rb_skew_post = skew_post;
    rb_goodput = float_of_int (2 * 8 * 120) /. (t1 -. t0) *. 1.0e6;
    rb_rounds = ctr.Runtime.rebal_rounds;
    rb_moves = ctr.Runtime.rebal_moves;
    rb_skipped = ctr.Runtime.rebal_skipped;
    rb_move_json = move_json;
    rb_fingerprint =
      ( ctr.Runtime.tx_committed,
        ctr.Runtime.tx_aborted,
        ctr.Runtime.oracle_consults,
        Weaver_sim.Net.messages_sent rt.Runtime.net,
        ctr.Runtime.nop_msgs );
  }

let rebalance () =
  header "Rebalance: closing the sense-plan-act loop on a hot-spot flip";
  let seed = 19 in
  let on = reb_arm ~rebalance:true ~seed in
  let off = reb_arm ~rebalance:false ~seed in
  line "%-4s %10s %9s %10s %10s %10s %7s %7s" "arm" "committed" "goodput"
    "skew pre" "spike" "post" "moves" "skips";
  let row tag (r : reb_arm) =
    line "%-4s %10d %9.0f %10.3f %10.3f %10.3f %7d %7d" tag r.rb_committed
      r.rb_goodput r.rb_skew_pre r.rb_skew_spike r.rb_skew_post r.rb_moves
      r.rb_skipped
  in
  row "off" off;
  row "on" on;
  (* the loop must close: post-flip skew back within 1.2x of pre-flip *)
  if on.rb_moves = 0 then failwith "rebalance: planner never moved anything";
  if on.rb_skew_post > 1.2 *. on.rb_skew_pre then
    failwith
      (Printf.sprintf "rebalance: skew %.3f did not recover (pre-flip %.3f)"
         on.rb_skew_post on.rb_skew_pre);
  (* without the planner the hot spot stays pinned above the hysteresis bar *)
  if off.rb_skew_post < Config.default.Config.rebalance_hysteresis then
    failwith
      (Printf.sprintf "rebalance: off arm unexpectedly balanced (skew %.3f)"
         off.rb_skew_post);
  let goodput_delta =
    abs_float (on.rb_goodput -. off.rb_goodput) /. off.rb_goodput
  in
  line "goodput delta %.2f%% (migrations abort racing writers, bounded)"
    (100.0 *. goodput_delta);
  if goodput_delta > 0.10 then failwith "rebalance: goodput delta above 10%";
  let again = reb_arm ~rebalance:true ~seed in
  let deterministic =
    again.rb_fingerprint = on.rb_fingerprint && again.rb_move_json = on.rb_move_json
  in
  line "deterministic rerun: %b" deterministic;
  if not deterministic then failwith "rebalance: rerun diverged";
  let oc = open_out "BENCH_rebalance.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"experiment\": \"rebalance\",\n  \"seed\": %d,\n" seed;
  j
    "  \"workload\": {\"writers\": 8, \"commits_per_writer_per_phase\": 120, \
     \"hot_set\": 16, \"keys\": %d, \"shards\": 4, \"gatekeepers\": 2, \
     \"rebalance_period_us\": 10000},\n"
    reb_keys;
  let arm tag (r : reb_arm) last =
    j
      "  \"%s\": {\"committed\": %d, \"aborted\": %d, \"goodput_per_s\": %.0f, \
       \"skew_pre_flip\": %.4f, \"skew_spike\": %.4f, \"skew_post_flip\": \
       %.4f, \"rounds\": %d, \"moves\": %d, \"skipped\": %d, \"move_log\": \
       %s}%s\n"
      tag r.rb_committed r.rb_aborted r.rb_goodput r.rb_skew_pre r.rb_skew_spike
      r.rb_skew_post r.rb_rounds r.rb_moves r.rb_skipped r.rb_move_json
      (if last then "" else ",")
  in
  arm "off" off false;
  arm "on" on false;
  j "  \"goodput_delta\": %.4f,\n" goodput_delta;
  j "  \"deterministic_rerun\": %b\n}\n" deterministic;
  close_out oc;
  line "wrote BENCH_rebalance.json"

(* ------------------------------------------------------------------ *)
(* Replication: read scale-out from timestamp-consistent partial
   replication of hot ranges (ROADMAP item 3). A Zipf-skewed weak-read
   pool saturates the hot range's owner; raising the replication factor
   spreads those reads over follower copies without touching the write
   path. The chaos arm pins a read at a covered stamp and crashes the
   owner mid-flight. *)

type repl_run = {
  rp_goodput : float;
  rp_reads_err : int;
  rp_writes : float;
  rp_read_p50 : float;
  rp_read_p99 : float;
  rp_installs : int;
  rp_routed : int;
  rp_updates : int;
  rp_fingerprint : (int * int * int * int) * (int * int * int);
}

let repl_seed = 29

let repl_bench_cfg ~factor ~seed =
  {
    Config.default with
    Config.seed;
    n_gatekeepers = 4;
    n_shards = 4;
    enable_heat = true;
    enable_replication = factor > 0;
    replication_factor = factor;
    gc_period = 2_000.0;
    (* reads must be the scarce resource for scale-out to show: with the
       default 1 µs read the gatekeeper plane and the wire dominate and
       every arm measures the same thing *)
    vertex_read_cost = 40.0;
  }

let repl_arm ~factor ~theta ~seed =
  let c = mk_cluster (repl_bench_cfg ~factor ~seed) in
  let rng = Xrand.create ~seed:(seed * 31) () in
  let g = Graphgen.uniform ~rng ~vertices:64 ~edges:128 () in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  let r =
    Readscale.run c ~vertices ~readers:48 ~writers:8 ~duration:250_000.0 ~theta
      ~warmup:50_000.0 ()
  in
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  {
    rp_goodput = r.Readscale.read_goodput;
    rp_reads_err = r.Readscale.reads_err;
    rp_writes = r.Readscale.write_throughput;
    rp_read_p50 = Stats.percentile r.Readscale.read_latencies 50.0;
    rp_read_p99 = Stats.percentile r.Readscale.read_latencies 99.0;
    rp_installs = ctr.Runtime.repl_installs;
    rp_routed = ctr.Runtime.repl_routed;
    rp_updates = ctr.Runtime.repl_updates;
    rp_fingerprint =
      ( ( ctr.Runtime.tx_committed,
          ctr.Runtime.tx_aborted,
          ctr.Runtime.progs_completed,
          ctr.Runtime.vertices_read ),
        ( Weaver_sim.Net.messages_sent rt.Runtime.net,
          ctr.Runtime.oracle_consults,
          ctr.Runtime.nop_msgs ) );
  }

(* owner crash under fire: warm a replicated range, pin a read at a
   follower-covered stamp, crash the owner, re-issue — same answer *)
let repl_chaos ~seed =
  let cfg =
    {
      (repl_bench_cfg ~factor:2 ~seed) with
      Config.n_gatekeepers = 1;
      vertex_read_cost = Config.default.Config.vertex_read_cost;
    }
  in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"hot" ());
  ok_exn "replication chaos setup" (Client.commit client tx);
  let owner = Cluster.shard_of_vertex c "hot" in
  let ctr = Cluster.counters c in
  let tries = ref 0 in
  while ctr.Runtime.repl_routed = 0 && !tries < 300 do
    incr tries;
    ignore
      (Client.run_program client ~prog:"get_node" ~params:Progval.Null
         ~starts:[ "hot" ] ~consistency:`Weak ());
    Cluster.run_for c 200.0
  done;
  if ctr.Runtime.repl_routed = 0 then
    failwith "replication chaos: range never became replicated";
  let tx = Client.Tx.begin_ client in
  Client.Tx.set_vertex_prop tx ~vid:"hot" ~key:"v" ~value:"final";
  ok_exn "replication chaos write" (Client.commit client tx);
  Cluster.run_for c 6_000.0;
  let ts = Cluster.gk_clock c 0 in
  Cluster.run_for c 6_000.0;
  let prop_v result =
    match result with
    | Progval.List [ s ] ->
        Option.map Progval.to_str (Progval.assoc_opt "v" (Progval.assoc "props" s))
    | _ -> failwith "replication chaos: unexpected get_node shape"
  in
  let read_at () =
    ok_exn "replication chaos pinned read"
      (Client.run_program client ~prog:"get_node" ~params:Progval.Null
         ~starts:[ "hot" ] ~at:ts ())
  in
  let baseline = prop_v (read_at ()) in
  if baseline <> Some "final" then
    failwith "replication chaos: pinned read missed the write";
  let crash_at = Cluster.now c +. 500.0 in
  ignore
    (Cluster.install_fault_plan c
       (Weaver_sim.Fault.scripted
          [ (crash_at, Weaver_sim.Fault.Crash (Weaver_sim.Fault.Shard owner)) ]));
  Cluster.run_for c 1_000.0;
  let after = prop_v (read_at ()) in
  if after <> baseline then
    failwith "replication chaos: covered read diverged after owner crash";
  (owner, !tries)

let replication () =
  header "Replication: read scale-out from hot-range partial replication";
  let factors = [ 0; 1; 2; 3 ] and thetas = [ 0.6; 0.9; 1.1 ] in
  let runs =
    List.map
      (fun theta ->
        (theta, List.map (fun f -> (f, repl_arm ~factor:f ~theta ~seed:repl_seed)) factors))
      thetas
  in
  line "%-6s %-7s %9s %9s %9s %9s %9s %8s %8s" "theta" "factor" "reads/s"
    "writes/s" "p50us" "p99us" "errs" "installs" "routed";
  List.iter
    (fun (theta, arms) ->
      List.iter
        (fun (f, r) ->
          line "%-6.1f %-7d %9.0f %9.0f %9.0f %9.0f %9d %8d %8d" theta f
            r.rp_goodput r.rp_writes r.rp_read_p50 r.rp_read_p99 r.rp_reads_err
            r.rp_installs r.rp_routed)
        arms)
    runs;
  let arm ~theta ~factor =
    List.assoc factor (List.assoc theta runs)
  in
  let base = arm ~theta:0.9 ~factor:0 and best = arm ~theta:0.9 ~factor:3 in
  let speedup = best.rp_goodput /. base.rp_goodput in
  line "read goodput at theta 0.9: factor 0 -> 3 is %.2fx" speedup;
  if speedup < 1.5 then
    failwith
      (Printf.sprintf "replication: %.2fx read scale-out below the 1.5x bar"
         speedup);
  if best.rp_writes < 0.95 *. base.rp_writes then
    failwith
      (Printf.sprintf
         "replication: write throughput sagged %.0f -> %.0f (>5%%)"
         base.rp_writes best.rp_writes);
  let again = repl_arm ~factor:3 ~theta:0.9 ~seed:repl_seed in
  let deterministic = again.rp_fingerprint = best.rp_fingerprint in
  line "deterministic rerun: %b" deterministic;
  if not deterministic then failwith "replication: rerun diverged";
  let crashed_owner, warm_tries = repl_chaos ~seed:repl_seed in
  line "chaos: covered pinned read survived crash of owner shard %d" crashed_owner;
  let oc = open_out "BENCH_replication.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"experiment\": \"replication\",\n  \"seed\": %d,\n" repl_seed;
  j
    "  \"workload\": {\"vertices\": 64, \"edges\": 128, \"readers\": 48, \
     \"writers\": 8, \"duration_us\": 250000, \"warmup_us\": 50000, \
     \"shards\": 4, \"gatekeepers\": 4, \"vertex_read_cost_us\": 40},\n";
  j "  \"arms\": [\n";
  let n_arms = List.length factors * List.length thetas in
  let i = ref 0 in
  List.iter
    (fun (theta, arms) ->
      List.iter
        (fun (f, r) ->
          incr i;
          j
            "    {\"theta\": %.1f, \"factor\": %d, \"read_goodput_per_s\": \
             %.0f, \"write_throughput_per_s\": %.0f, \"read_p50_us\": %.0f, \
             \"read_p99_us\": %.0f, \"read_errors\": %d, \"installs\": %d, \
             \"routed\": %d, \"updates\": %d}%s\n"
            theta f r.rp_goodput r.rp_writes r.rp_read_p50 r.rp_read_p99
            r.rp_reads_err r.rp_installs r.rp_routed r.rp_updates
            (if !i = n_arms then "" else ","))
        arms)
    runs;
  j "  ],\n";
  j "  \"read_scaleout_theta09_f3_vs_f0\": %.4f,\n" speedup;
  j "  \"write_delta_theta09_f3_vs_f0\": %.4f,\n"
    (best.rp_writes /. base.rp_writes);
  j "  \"chaos\": {\"crashed_owner\": %d, \"warmup_reads\": %d, \
     \"covered_read_survived\": true},\n"
    crashed_owner warm_tries;
  j "  \"deterministic_rerun\": %b\n}\n" deterministic;
  close_out oc;
  line "wrote BENCH_replication.json"

let all =
  [
    ("table1", table1);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9a", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("ablation_cache", ablation_cache);
    ("ablation_truetime", ablation_truetime);
    ("ablation_partition", ablation_partition);
    ("ablation_nop", ablation_nop);
    ("ablation_replicas", ablation_replicas);
    ("ablation_adaptive_tau", ablation_adaptive_tau);
    ("ablation_freshness", ablation_freshness);
    ("breakdown", breakdown);
    ("timeline", timeline);
    ("chaos", chaos);
    ("contention", contention);
    ("overload", overload);
    ("snapshot", snapshot);
    ("skew", skew);
    ("rebalance", rebalance);
    ("replication", replication);
  ]
