(* Benchmark harness entry point.

   With no arguments, runs every experiment (each paper table and figure,
   then the ablations, then the Bechamel microbenchmarks). With arguments,
   runs only the named experiments: e.g.
     dune exec bench/main.exe -- fig7 fig14
   Use `list` to see the available names. *)

let () =
  let names = List.map fst Experiments.all in
  match Array.to_list Sys.argv with
  | _ :: [] ->
      List.iter (fun (_, f) -> f ()) Experiments.all;
      Micro.run ()
  | _ :: [ "list" ] -> List.iter print_endline (names @ [ "micro"; "speed" ])
  | _ :: args ->
      List.iter
        (fun arg ->
          if arg = "micro" then Micro.run ()
          else if arg = "speed" then Speed.run ()
          else
            match List.assoc_opt arg Experiments.all with
            | Some f -> f ()
            | None ->
                Printf.eprintf "unknown experiment %S (try: %s)\n" arg
                  (String.concat " " (names @ [ "micro" ]));
                exit 1)
        args
  | [] -> assert false
