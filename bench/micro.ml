(* Bechamel microbenchmarks of the core data structures: one Test.make per
   hot path. These complement the experiment harness with per-operation
   costs of the building blocks. *)

open Bechamel
open Toolkit
module Vclock = Weaver_vclock.Vclock
module Oracle = Weaver_oracle.Oracle
module Heap = Weaver_util.Heap
module Store = Weaver_store.Store
module Mgraph = Weaver_graph.Mgraph
module Xrand = Weaver_util.Xrand

let vclock_compare =
  let a = Vclock.make ~epoch:0 ~origin:0 [| 5; 3; 9; 1 |] in
  let b = Vclock.make ~epoch:0 ~origin:1 [| 5; 4; 9; 2 |] in
  Test.make ~name:"vclock.compare_hb" (Staged.stage (fun () -> Vclock.compare_hb a b))

let vclock_tick_merge =
  let a = Vclock.make ~epoch:0 ~origin:0 [| 5; 3; 9; 1 |] in
  let b = Vclock.make ~epoch:0 ~origin:1 [| 5; 4; 9; 2 |] in
  Test.make ~name:"vclock.tick+merge"
    (Staged.stage (fun () -> Vclock.merge (Vclock.tick a ~origin:0) b))

let oracle_order =
  Test.make ~name:"oracle.order (fresh pair)"
    (Staged.stage (fun () ->
         let t = Oracle.create () in
         let a = Vclock.make ~epoch:0 ~origin:0 [| 1; 0 |] in
         let b = Vclock.make ~epoch:0 ~origin:1 [| 0; 1 |] in
         Oracle.order t ~first:a ~second:b))

let heap_churn =
  Test.make ~name:"heap.push+pop x64"
    (Staged.stage (fun () ->
         let h = Heap.create ~cmp:compare in
         for i = 0 to 63 do
           Heap.push h ((i * 37) mod 64)
         done;
         while not (Heap.is_empty h) do
           ignore (Heap.pop h)
         done))

let engine_step =
  Test.make ~name:"engine.schedule+step x64"
    (Staged.stage (fun () ->
         let e = Weaver_sim.Engine.create () in
         for i = 0 to 63 do
           Weaver_sim.Engine.schedule e
             ~delay:(float_of_int ((i * 37) mod 64))
             ignore
         done;
         Weaver_sim.Engine.run e))

let net_send =
  Test.make ~name:"net.send+deliver x64"
    (Staged.stage (fun () ->
         let e = Weaver_sim.Engine.create ~seed:7 () in
         let net =
           Weaver_sim.Net.create e ~latency:Weaver_sim.Net.local_latency
         in
         Weaver_sim.Net.register net 1 (fun ~src:_ _ -> ());
         for i = 0 to 63 do
           Weaver_sim.Net.send net ~src:0 ~dst:1 i
         done;
         Weaver_sim.Engine.run e))

let store_tx =
  let s = Store.create () in
  Test.make ~name:"store.tx (2 reads + 2 writes)"
    (Staged.stage (fun () ->
         let tx = Store.Tx.begin_ s in
         ignore (Store.Tx.get tx "a");
         ignore (Store.Tx.get tx "b");
         Store.Tx.put tx "a" 1;
         Store.Tx.put tx "b" 2;
         ignore (Store.Tx.commit tx)))

let mgraph_snapshot =
  let at i = Vclock.make ~epoch:0 ~origin:0 [| i |] in
  let v = ref (Mgraph.create_vertex ~vid:"v" ~at:(at 0)) in
  for i = 1 to 32 do
    v := Mgraph.add_edge !v ~eid:(string_of_int i) ~dst:"d" ~at:(at i)
  done;
  let v = !v in
  let before a b = Vclock.precedes a b in
  Test.make ~name:"mgraph.out_edges (32 versions)"
    (Staged.stage (fun () -> Mgraph.out_edges before v ~at:(at 16)))

let rng_zipf =
  let rng = Xrand.create ~seed:1 () in
  Test.make ~name:"xrand.zipf" (Staged.stage (fun () -> Xrand.zipf rng ~n:100_000 ~theta:0.9))

(* Demand paging under memory pressure: a capacity-bounded shard serving
   uniform point reads over a working set 8x its capacity, so most queries
   page a vertex in and evict another. Guards the O(1)-amortized eviction
   path (a whole-queue scan here is quadratic in touch volume). *)
let shard_paging =
  let open Weaver_core in
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 1;
      Config.n_shards = 1;
      Config.shard_capacity = Some 64;
    }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let rng = Xrand.create ~seed:5 () in
  let g =
    Weaver_workloads.Graphgen.uniform ~rng ~prefix:"pg" ~vertices:512 ~edges:1_024 ()
  in
  Weaver_workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Weaver_workloads.Graphgen.vertex_ids g) in
  let client = Cluster.client c in
  Test.make ~name:"shard.paging (cap 64, set 512)"
    (Staged.stage (fun () ->
         ignore
           (Client.run_program client ~prog:"get_node" ~params:Progval.Null
              ~starts:[ Xrand.pick rng vertices ] ())))

let tests =
  Test.make_grouped ~name:"micro"
    [
      vclock_compare;
      vclock_tick_merge;
      oracle_order;
      heap_churn;
      engine_step;
      net_send;
      store_tx;
      mgraph_snapshot;
      rng_zipf;
      shard_paging;
    ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
  Printf.printf "\n==== Microbenchmarks (ns/op) ====\n";
  Hashtbl.iter
    (fun _meas tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-36s %12.1f\n" name est
          | _ -> ())
        tbl)
    results
