(* The raw-speed gate: deterministic workloads timed with the process
   clock, emitted as BENCH_micro.json.

   Two layers:
   - micro: fixed-iteration loops over the hot building blocks
     (engine scheduling, network send+deliver, heap churn, multi-version
     adjacency reads), reported as ns/op. The workload each loop performs
     is bit-deterministic; only the measured time varies by machine.
   - macro: a table1-style closed-loop TAO mix on a full cluster,
     reported as simulated operations per second of *wall CPU time* (not
     virtual time — this measures the simulator itself, which is what
     caps the 1M+-vertex sweeps in ROADMAP items 1-3).

   The "baseline" block below is the same workload measured on the tree
   as of the start of this PR (commit 4d70e71), so the JSON carries the
   before/after comparison the speed work is gated on. The macro
   fingerprint is asserted identical across an in-process rerun: any
   perturbation of simulated behaviour fails the gate loudly. *)

open Weaver_core
open Weaver_workloads
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Heap = Weaver_util.Heap
module Xrand = Weaver_util.Xrand
module Vclock = Weaver_vclock.Vclock
module Mgraph = Weaver_graph.Mgraph

let line fmt = Printf.printf (fmt ^^ "\n%!")

(* -------------------------------------------------------------- *)
(* Baseline: measured at the seed of this PR on the reference
   machine. ns/op for the micro loops, ops per CPU-second for the
   macro run. *)

let baseline_micro : (string * float) list =
  [
    ("engine.schedule+step", 2908.0);
    ("net.send+deliver", 2048.7);
    ("heap.push+pop x64", 89.2);
    ("mgraph.out_edges (32 versions)", 932.6);
  ]

let baseline_macro_ops_per_cpu_s = 19_861.0

(* -------------------------------------------------------------- *)
(* micro: best-of-three fixed-count loops *)

let time_ns_per_op ~iters f =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Sys.time () in
    f ();
    let dt = Sys.time () -. t0 in
    let ns = dt *. 1e9 /. float_of_int iters in
    if ns < !best then best := ns
  done;
  !best

let bench_engine_step () =
  let iters = 400_000 in
  time_ns_per_op ~iters (fun () ->
      let e = Engine.create ~seed:3 () in
      for i = 0 to iters - 1 do
        Engine.schedule e ~delay:(float_of_int ((i * 37) mod 100)) ignore
      done;
      Engine.run e)

let bench_net_send () =
  let iters = 200_000 in
  time_ns_per_op ~iters (fun () ->
      let e = Engine.create ~seed:4 () in
      let net = Net.create e ~latency:(Net.uniform_latency ~base:50.0 ~jitter:20.0) in
      let sink = ref 0 in
      Net.register net 1 (fun ~src:_ m -> sink := !sink + m);
      (* 8 source channels, interleaved, so the FIFO-floor path is hot *)
      for i = 0 to iters - 1 do
        Net.send net ~src:(2 + (i land 7)) ~dst:1 i
      done;
      Engine.run e;
      assert (Net.messages_delivered net = iters))

let bench_heap_churn () =
  let rounds = 6_000 in
  let iters = rounds * 64 in
  time_ns_per_op ~iters (fun () ->
      let h = Heap.create ~cmp:compare in
      for _ = 1 to rounds do
        for i = 0 to 63 do
          Heap.push h ((i * 37) mod 64)
        done;
        while not (Heap.is_empty h) do
          ignore (Heap.pop h)
        done
      done)

let bench_mgraph_out_edges () =
  let at i = Vclock.make ~epoch:0 ~origin:0 [| i |] in
  let v = ref (Mgraph.create_vertex ~vid:"v" ~at:(at 0)) in
  for i = 1 to 32 do
    v := Mgraph.add_edge !v ~eid:(string_of_int i) ~dst:"d" ~at:(at i)
  done;
  let v = !v in
  let before a b = Vclock.precedes a b in
  let iters = 400_000 in
  time_ns_per_op ~iters (fun () ->
      for _ = 1 to iters do
        ignore (Mgraph.out_edges before v ~at:(at 16))
      done)

let run_micro () =
  [
    ("engine.schedule+step", bench_engine_step ());
    ("net.send+deliver", bench_net_send ());
    ("heap.push+pop x64", bench_heap_churn ());
    ("mgraph.out_edges (32 versions)", bench_mgraph_out_edges ());
  ]

(* -------------------------------------------------------------- *)
(* macro: closed-loop TAO mix, fixed virtual window, timed in CPU s *)

type macro_run = {
  m_completed : int;
  m_aborted : int;
  m_cpu_s : float;
  m_ops_per_cpu_s : float;
  m_fingerprint : int * int * int * int * int * int;
}

let macro_arm () =
  let cfg =
    {
      Config.default with
      Config.seed = 11;
      Config.n_gatekeepers = 2;
      Config.n_shards = 4;
    }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let rng = Xrand.create ~seed:23 () in
  let g = Graphgen.uniform ~rng ~prefix:"sp" ~vertices:2_000 ~edges:4_000 () in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  let t0 = Sys.time () in
  let r = Tao.Driver.run c ~vertices ~clients:32 ~duration:400_000.0 () in
  let cpu = Sys.time () -. t0 in
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  {
    m_completed = r.Tao.Driver.completed;
    m_aborted = r.Tao.Driver.aborted;
    m_cpu_s = cpu;
    m_ops_per_cpu_s = float_of_int r.Tao.Driver.completed /. cpu;
    m_fingerprint =
      ( r.Tao.Driver.completed,
        r.Tao.Driver.aborted,
        ctr.Runtime.tx_committed,
        ctr.Runtime.progs_completed,
        Net.messages_sent rt.Runtime.net,
        ctr.Runtime.nop_msgs );
  }

let run () =
  line "\n==== Speed gate: micro ns/op and macro simulated-ops per CPU-second ====";
  let micro = run_micro () in
  line "%-34s %12s %12s %8s" "micro" "baseline" "now" "ratio";
  List.iter
    (fun (name, now) ->
      let base = List.assoc name baseline_micro in
      line "%-34s %12.1f %12.1f %8.2f" name base now (base /. Float.max now 1e-9))
    micro;
  let m = macro_arm () in
  (* determinism: the run must reproduce its counter fingerprint exactly *)
  let m2 = macro_arm () in
  let deterministic = m.m_fingerprint = m2.m_fingerprint in
  if not deterministic then failwith "speed: macro rerun fingerprint diverged";
  let c1, a1, tc, pc, ms, nm = m.m_fingerprint in
  line "macro: %d ops (%d aborts) in %.3f CPU s = %.0f ops/s (baseline %.0f, %.2fx)"
    m.m_completed m.m_aborted m.m_cpu_s m.m_ops_per_cpu_s
    baseline_macro_ops_per_cpu_s
    (m.m_ops_per_cpu_s /. baseline_macro_ops_per_cpu_s);
  line "deterministic rerun: %b" deterministic;
  let oc = open_out "BENCH_micro.json" in
  let j fmt = Printf.fprintf oc fmt in
  j "{\n  \"experiment\": \"speed\",\n";
  j "  \"micro_ns_per_op\": [";
  List.iteri
    (fun i (name, now) ->
      let base = List.assoc name baseline_micro in
      j "%s\n    {\"name\": %S, \"before\": %.1f, \"after\": %.1f, \"speedup\": %.2f}"
        (if i = 0 then "" else ",")
        name base now (base /. Float.max now 1e-9))
    micro;
  j "\n  ],\n";
  j "  \"macro\": {\"workload\": \"table1 TAO mix, 2 gk / 4 shards, 32 clients, 400 ms virtual\",\n";
  j "    \"completed\": %d, \"aborted\": %d, \"cpu_s\": %.4f,\n" m.m_completed
    m.m_aborted m.m_cpu_s;
  j "    \"ops_per_cpu_s_before\": %.0f, \"ops_per_cpu_s_after\": %.0f, \"speedup\": %.2f},\n"
    baseline_macro_ops_per_cpu_s m.m_ops_per_cpu_s
    (m.m_ops_per_cpu_s /. baseline_macro_ops_per_cpu_s);
  j "  \"fingerprint\": {\"completed\": %d, \"aborted\": %d, \"tx_committed\": %d, \"progs_completed\": %d, \"messages_sent\": %d, \"nop_msgs\": %d},\n"
    c1 a1 tc pc ms nm;
  j "  \"deterministic_rerun\": %b\n}\n" deterministic;
  close_out oc;
  line "wrote BENCH_micro.json"
